//! Genetic algorithm (paper Section II-D2): "creates a fixed-sized
//! population of candidate solutions that, using the crossover and
//! mutation operators, evolves over a number of generations toward
//! better solutions."
//!
//! The chromosome is the full tile permutation of a [`Mapping`]
//! (tasks first, free tiles in the tail), so permutation-preserving
//! operators keep every individual valid by construction:
//!
//! * **selection** — size-`k` tournament;
//! * **crossover** — PMX (partially mapped) or OX (order), both standard
//!   for permutation encodings;
//! * **mutation** — an admitted swap drawn from the engine-selected
//!   [`Neighborhood`] stream ([`Neighborhood::draw_for`]), so the GA
//!   respects the context's
//!   [`NeighborhoodPolicy`](phonoc_core::NeighborhoodPolicy): under
//!   `locality` a mutation displaces tasks at most the current radius
//!   apart (relative to the individual being mutated), and under every
//!   policy mutations stop wasting draws on objective-invisible
//!   free–free swaps;
//! * **elitism** — the best `elite` individuals survive unchanged.
//!
//! (Random search deliberately stays policy-free: it proposes whole
//! uniform mappings, not moves, so there is no neighbourhood to
//! restrict — see `random_search`.)

use crate::neighborhood::Neighborhood;
use phonoc_core::{Mapping, MappingOptimizer, OptContext};
use phonoc_topo::TileId;
use rand::Rng;

/// Which permutation crossover to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Crossover {
    /// Partially-mapped crossover (default).
    #[default]
    Pmx,
    /// Order crossover.
    Ox,
}

/// Tunable GA parameters. The defaults follow common practice for
/// permutation problems of this size (tens of positions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticAlgorithm {
    /// Population size.
    pub population: usize,
    /// Individuals copied unchanged into the next generation.
    pub elite: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-offspring probability of one extra mutation swap.
    pub mutation_rate: f64,
    /// Crossover operator.
    pub crossover: Crossover,
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        GeneticAlgorithm {
            population: 40,
            elite: 2,
            tournament: 3,
            mutation_rate: 0.35,
            crossover: Crossover::Pmx,
        }
    }
}

impl MappingOptimizer for GeneticAlgorithm {
    fn name(&self) -> &'static str {
        "ga"
    }

    fn optimize(&self, ctx: &mut OptContext<'_>) {
        let pop_size = self.population.max(2);
        let elite = self.elite.min(pop_size - 1);
        // The policy-respecting mutation kernel (see the module docs).
        let mut nbhd = Neighborhood::new(ctx);

        // Initial population, scored as one parallel batch. The first
        // individual is the context's initial mapping — a planted
        // elite incumbent under portfolio exchange, a plain random
        // draw otherwise.
        let initial: Vec<Mapping> = (0..pop_size)
            .map(|i| {
                if i == 0 {
                    ctx.initial_mapping()
                } else {
                    ctx.random_mapping()
                }
            })
            .collect();
        let scores = ctx.evaluate_batch(&initial);
        let mut pop: Vec<(Mapping, f64)> = initial.into_iter().zip(scores).collect();
        if pop.is_empty() {
            return;
        }

        while !ctx.exhausted() {
            // Sort descending by fitness (higher score = better).
            pop.sort_by(|a, b| b.1.total_cmp(&a.1));
            let survivors = elite.min(pop.len());
            let mut next: Vec<(Mapping, f64)> = pop[..survivors].to_vec();
            // Breed the whole generation first (evaluation consumes no
            // randomness, so the RNG stream matches a breed-then-score
            // interleaving), then score it as one parallel batch.
            let mut offspring: Vec<Mapping> = Vec::with_capacity(pop_size - next.len());
            while next.len() + offspring.len() < pop_size {
                let a = tournament(&pop, self.tournament, ctx);
                let b = tournament(&pop, self.tournament, ctx);
                let mut child = match self.crossover {
                    Crossover::Pmx => pmx(&pop[a].0, &pop[b].0, ctx.rng()),
                    Crossover::Ox => ox(&pop[a].0, &pop[b].0, ctx.rng()),
                };
                if ctx.rng().gen_bool(self.mutation_rate.clamp(0.0, 1.0)) {
                    if let Some(mv) = nbhd.draw_for(&child) {
                        child.apply_move(mv);
                    }
                }
                debug_assert!(child.is_valid());
                offspring.push(child);
            }
            let scores = ctx.evaluate_batch(&offspring);
            let exhausted = scores.len() < offspring.len();
            next.extend(offspring.into_iter().zip(scores));
            pop = next;
            if exhausted {
                return;
            }
        }
    }
}

/// Tournament selection: index of the best of `k` random individuals.
fn tournament(pop: &[(Mapping, f64)], k: usize, ctx: &mut OptContext<'_>) -> usize {
    let k = k.clamp(1, pop.len());
    let mut best = ctx.rng().gen_range(0..pop.len());
    for _ in 1..k {
        let c = ctx.rng().gen_range(0..pop.len());
        if pop[c].1 > pop[best].1 {
            best = c;
        }
    }
    best
}

/// Partially-mapped crossover over the full tile permutation.
pub(crate) fn pmx<R: Rng + ?Sized>(a: &Mapping, b: &Mapping, rng: &mut R) -> Mapping {
    let pa = a.permutation();
    let pb = b.permutation();
    let n = pa.len();
    if n < 2 {
        return a.clone();
    }
    let (lo, hi) = random_window(n, rng);

    let mut child: Vec<Option<TileId>> = vec![None; n];
    let mut used = vec![false; n];
    // Copy the window from parent A.
    for i in lo..=hi {
        child[i] = Some(pa[i]);
        used[pa[i].0] = true;
    }
    // Map B's window genes displaced by A's window.
    for i in lo..=hi {
        let gene = pb[i];
        if used[gene.0] {
            continue;
        }
        // Follow the PMX chain to find a free position.
        let mut pos = i;
        loop {
            let displaced = pa[pos];
            pos = pb
                .iter()
                .position(|&g| g == displaced)
                .expect("permutation");
            if !(lo..=hi).contains(&pos) {
                break;
            }
        }
        // The chain lands on a free slot for true permutations; guard
        // anyway so a collision degrades to leftover-filling instead of
        // silently dropping a gene.
        if child[pos].is_none() {
            child[pos] = Some(gene);
            used[gene.0] = true;
        }
    }
    // Fill the rest from B in order.
    for i in 0..n {
        if child[i].is_none() {
            let gene = pb[i];
            if !used[gene.0] {
                child[i] = Some(gene);
                used[gene.0] = true;
            }
        }
    }
    // Any still-unfilled positions take the remaining genes in order.
    let mut leftovers = (0..n).filter(|&g| !used[g]).map(TileId);
    let perm: Vec<TileId> = child
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| leftovers.next().expect("counts match")))
        .collect();
    mapping_from_perm(perm, a.task_count())
}

/// Order crossover over the full tile permutation.
pub(crate) fn ox<R: Rng + ?Sized>(a: &Mapping, b: &Mapping, rng: &mut R) -> Mapping {
    let pa = a.permutation();
    let pb = b.permutation();
    let n = pa.len();
    if n < 2 {
        return a.clone();
    }
    let (lo, hi) = random_window(n, rng);
    let mut child: Vec<Option<TileId>> = vec![None; n];
    let mut used = vec![false; n];
    for i in lo..=hi {
        child[i] = Some(pa[i]);
        used[pa[i].0] = true;
    }
    // Fill remaining positions with B's genes in B's cyclic order
    // starting after the window.
    let mut fill = (hi + 1) % n;
    for k in 0..n {
        let gene = pb[(hi + 1 + k) % n];
        if used[gene.0] {
            continue;
        }
        while child[fill].is_some() {
            fill = (fill + 1) % n;
        }
        child[fill] = Some(gene);
        used[gene.0] = true;
    }
    let perm: Vec<TileId> = child.into_iter().map(|s| s.expect("filled")).collect();
    mapping_from_perm(perm, a.task_count())
}

fn random_window<R: Rng + ?Sized>(n: usize, rng: &mut R) -> (usize, usize) {
    let i = rng.gen_range(0..n);
    let j = rng.gen_range(0..n);
    (i.min(j), i.max(j))
}

fn mapping_from_perm(perm: Vec<TileId>, task_count: usize) -> Mapping {
    let tile_count = perm.len();
    let assignment: Vec<TileId> = perm[..task_count].to_vec();
    // `from_assignment` re-derives the free tail; the tail order may
    // differ from `perm`'s but free-tile order is semantically irrelevant.
    Mapping::from_assignment(assignment, tile_count)
        .expect("crossover of valid permutations stays valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_problem;
    use phonoc_core::{run_dse, DseConfig};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ga_respects_budget_and_validity() {
        let p = tiny_problem();
        let r = run_dse(&p, &GeneticAlgorithm::default(), &DseConfig::new(500, 3));
        assert_eq!(r.evaluations, 500);
        assert!(r.best_mapping.is_valid());
    }

    #[test]
    fn ga_is_deterministic_per_seed() {
        let p = tiny_problem();
        let a = run_dse(&p, &GeneticAlgorithm::default(), &DseConfig::new(300, 11));
        let b = run_dse(&p, &GeneticAlgorithm::default(), &DseConfig::new(300, 11));
        assert_eq!(a.best_mapping, b.best_mapping);
    }

    #[test]
    fn ga_respects_every_neighborhood_policy() {
        // The mutation kernel draws from the engine-selected stream;
        // every policy must stay valid, budget-exact and deterministic.
        let p = tiny_problem();
        for policy in phonoc_core::NeighborhoodPolicy::ALL {
            let a = phonoc_core::run_dse(
                &p,
                &GeneticAlgorithm::default(),
                &DseConfig::new(200, 6).with_policy(policy),
            );
            let b = phonoc_core::run_dse(
                &p,
                &GeneticAlgorithm::default(),
                &DseConfig::new(200, 6).with_policy(policy),
            );
            assert_eq!(a.evaluations, 200, "{policy}");
            assert!(a.best_mapping.is_valid(), "{policy}");
            assert_eq!(a.best_mapping, b.best_mapping, "{policy}");
        }
    }

    #[test]
    fn ox_variant_works_too() {
        let p = tiny_problem();
        let ga = GeneticAlgorithm {
            crossover: Crossover::Ox,
            ..GeneticAlgorithm::default()
        };
        let r = run_dse(&p, &ga, &DseConfig::new(300, 4));
        assert!(r.best_mapping.is_valid());
    }

    #[test]
    fn tiny_population_is_clamped() {
        let p = tiny_problem();
        let ga = GeneticAlgorithm {
            population: 1,
            elite: 5,
            ..GeneticAlgorithm::default()
        };
        let r = run_dse(&p, &ga, &DseConfig::new(50, 1));
        assert_eq!(r.evaluations, 50);
    }

    proptest! {
        /// PMX and OX must always produce valid permutations.
        #[test]
        fn crossovers_preserve_validity(
            seed in 0u64..1000,
            tasks in 2usize..10,
            extra in 0usize..6,
        ) {
            let tiles = tasks + extra;
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Mapping::random(tasks, tiles, &mut rng);
            let b = Mapping::random(tasks, tiles, &mut rng);
            let c1 = pmx(&a, &b, &mut rng);
            let c2 = ox(&a, &b, &mut rng);
            prop_assert!(c1.is_valid());
            prop_assert!(c2.is_valid());
            prop_assert_eq!(c1.task_count(), tasks);
            prop_assert_eq!(c2.task_count(), tasks);
        }
    }
}
