#!/usr/bin/env python3
"""Advisory bench gate: sanity-checks a freshly generated sweep report
against the committed baselines.

Usage:
    python3 scripts/bench_gate.py [BENCH_sweep_smoke.json] [BENCH_evaluator.json]
        [--baseline BENCH_sweep.json] [--warmstart BENCH_warmstart.json]
        [--parallel BENCH_parallel.json] [--lint-deprecated REPO_ROOT]
        [--trace run.trace.jsonl]... [--gaps] [--strict] [--strict-quality]

Checks (all *advisory* — the script always exits 0 — unless --strict
makes any finding fatal, --strict-quality makes the quality findings
(checks 3, 5, 6 and 7 plus the deprecation lint — deterministic data,
not timing) fatal, or an input file is malformed):

--lint-deprecated REPO_ROOT greps the Rust tree for callers of the
deprecated `run_dse_*` entry-point wrappers (`run_dse_with_strategy`,
`run_dse_with_policy`, `run_dse_configured`, `run_dse_session`) outside
the files that define and re-export them — the single-entry-point
contract of the `run_dse(problem, optimizer, &DseConfig)` API. Any hit
is a quality finding (fatal under --strict or --strict-quality).

1. Hybrid regression: per scenario, the adaptive peek must stay within
   GENEROUS_HYBRID_FACTOR of the best single strategy. The committed
   full-matrix acceptance bound is 1.10; CI smoke runs on shared
   runners, so the advisory threshold is looser.
2. Anchor drift: scenarios whose shape matches a committed
   BENCH_evaluator.json anchor (mesh 4/6/8 full evaluation) must land
   within GENEROUS_ANCHOR_FACTOR of the recorded median in either
   direction — catching order-of-magnitude evaluator regressions
   without flaking on machine differences.
3. Neighborhood quality: within the report itself, on every 12x12+
   cell (where the admitted list outgrows the budget), the budget-aware
   R-PBLA streams (r-pbla@sampled / r-pbla@locality) must not lose to
   the exhaustive truncated-scan baseline — the tentpole claim of the
   neighborhood subsystem. Below that mesh floor the default `auto`
   policy resolves to exhaustive anyway, and a pinned stream may
   legitimately trail on plateau-heavy tiny workloads (the committed
   sweep records pipeline-4x4 doing exactly that), so small-mesh rows
   are covered by the baseline drift check instead.
4. Score drift: per (cell, algo) with an --baseline sweep report and a
   matching evaluation budget, optimizer scores are deterministic per
   seed, so a fresh score diverging from the committed one (in either
   direction) by more than SCORE_DRIFT_DB flags a behavioral change in
   the search stack.
5. Portfolio quality: on every 12x12+ cell carrying a portfolio row
   (neighborhood == "portfolio"), the exchanged portfolio runs at the
   same *total* budget as each single lane. The pinned claim — fatal
   under --strict-quality, like check 3 deterministic data rather than
   timing — is that the portfolio meets or beats the best single
   r-pbla lane outright on at least PORTFOLIO_WIN_SHARE of those
   cells. Cells where it trails by more than PORTFOLIO_TOLERANCE_DB
   are additionally listed as plain advisories (a portfolio can pay a
   bounded exploration tax on cells one stream dominates end to end;
   the committed sweep records which).
6. Warm-start (--warmstart BENCH_warmstart.json): the warm-start
   engine's deterministic claims, fatal under --strict-quality. Every
   exact-hit repeat request must have performed ZERO optimizer
   evaluations and reproduced the cold score bit-for-bit; every
   phase-reverted request must be an exact hit again (canonical keys);
   and on the 12x12+ cells the median evaluations-to-parity ratio of
   the <=10%-perturbed warm runs must be <= WARMSTART_PARITY_RATIO of
   the cold budget. Smoke replays have no 12x12+ cells, so the parity
   gate is skipped there (the hit checks still apply); warm/cold
   wall-clock comparisons are never gated — timings on shared runners
   are advisory by nature.
7. Power columns (schema phonocmap-bench-sweep/6+): every scenario must
   carry the objective-suffixed power-family rows (`!power`,
   `!margin-pam4` on the full matrix, `!power` on smoke) with a finite
   score and a non-zero evaluation count — the cross-layer laser-power
   objectives ride the same cells as the SNR rows. Missing or degenerate
   rows are quality findings (deterministic data, fatal under
   --strict-quality). Per-cell score drift for these rows is covered by
   check 4, which compares every (cell, algo) pair including the
   suffixed specs; their scores live on a different scale from the snr
   rows, so checks 3 and 5 compare only rows sharing an objective.
8. Parallel dispatch (--parallel BENCH_parallel.json): the persistent
   worker pool must not cost more than the retained scope-spawn
   reference it replaced. Per measured cell, pool_ns above
   spawn_ns * PARALLEL_CELL_SLACK is an advisory (individual cells on
   shared runners are noisy); the *median* pool/spawn ratio exceeding
   1.0, or any (cost, workers) series whose pool path reaches
   sequential parity at a larger batch than the spawn path, is a
   quality finding — fatal under --strict-quality, since the whole
   point of the pool is cheaper dispatch at every batch size.
9. Optimality gaps (--gaps, schema phonocmap-bench-sweep/7+): the exact
   lane's certificate columns. Structurally, every optimizer row must
   carry a finite `lower_bound` (score-space upper bound: no mapping of
   the instance scores above it) and a `gap_db = lower_bound -
   best_score` that is non-negative (within GAP_EPSILON_DB of float
   noise), and any row claiming `proved_optimal` must have gap exactly
   0.0 — a proved cell's bound IS the optimum. Certificates are
   deterministic data, so every structural violation is a quality
   finding (fatal under --strict-quality). Against --baseline (when
   the baseline also carries schema /7 columns), two regressions are
   quality findings: a (cell, algo) pair that was `proved_optimal` in
   the baseline losing its proof, and the per-objective *median* gap
   widening by more than GAP_WIDEN_DB — a bound that got looser, or a
   search that stopped reaching it.
10. Run traces (--trace FILE, repeatable): a `phonocmap-trace/1` JSONL
   file written by `--trace-out` (phonocmap optimize/portfolio/replay).
   The header must carry the schema tag and an `events` count equal to
   the number of event lines that follow; every event line must be
   strict JSON with a known `ev` tag; every `session_end`'s route
   counters must partition its evaluation ledger exactly
   (full_evaluations == full_peeks + full_direct, delta_evaluations ==
   delta_exact + loss_fast_path + bound_rejected + bound_verified +
   bound_charges); and when per-peek events are present their per-route
   counts must match the summed session counters one for one. A
   zero-event trace (header only) is valid — it is what the sink-off
   path (PHONOC_TRACE_NULL) must produce. Traces are deterministic
   data, so every violation is a quality finding (fatal under
   --strict-quality).

Everything is stdlib-only (CI runners have bare python3).
"""

import json
import sys

GENEROUS_HYBRID_FACTOR = 1.5
GENEROUS_ANCHOR_FACTOR = 10.0
SCORE_DRIFT_DB = 0.05
NEIGHBORHOOD_MESH_FLOOR = 12
PORTFOLIO_TOLERANCE_DB = 0.05
PORTFOLIO_WIN_SHARE = 0.80
WARMSTART_PARITY_RATIO = 0.50
WARMSTART_MESH_FLOOR = 12
PARALLEL_CELL_SLACK = 1.05
GAP_EPSILON_DB = 1e-9
GAP_WIDEN_DB = 0.05

# BENCH_evaluator.json anchors comparable to sweep cells: the committed
# reused-scratch full-evaluation medians per mesh size.
ANCHORS = {
    4: ("full_alloc_vs_scratch_vopd_4x4", "evaluate_into_scratch"),
    6: ("full_alloc_vs_scratch_dvopd_6x6", "evaluate_into_scratch"),
    8: ("full_alloc_vs_scratch_synthetic_8x8", "evaluate_into_scratch"),
}


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_gate: cannot load {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def check_hybrid(sweep):
    advisories = []
    for sc in sweep.get("scenarios", []):
        peek = sc["peek_ns"]
        best_exact = min(peek["full"], peek["delta"])
        best_improving = min(peek["full"], peek["bounded"])
        for label, ns, best in [
            ("exact", peek["hybrid_exact"], best_exact),
            ("improving", peek["hybrid_improving"], best_improving),
        ]:
            ratio = ns / max(best, 1)
            if ratio > GENEROUS_HYBRID_FACTOR:
                advisories.append(
                    f"{sc['id']}: hybrid_{label} {ns} ns is {ratio:.2f}x the best "
                    f"single strategy ({best} ns; advisory threshold "
                    f"{GENEROUS_HYBRID_FACTOR}x)"
                )
    return advisories


def check_anchors(sweep, evaluator):
    advisories = []
    results = evaluator.get("results_ns", {})
    for sc in sweep.get("scenarios", []):
        anchor = ANCHORS.get(sc["mesh"])
        if anchor is None:
            continue
        group, key = anchor
        baseline = results.get(group, {}).get(key)
        if not baseline:
            continue
        # The anchor evaluates a whole mapping; the sweep's `full` peek
        # is the same work (scratch re-evaluation of a moved mapping) on
        # a *different* CG, so only order-of-magnitude drift is flagged.
        measured = sc["peek_ns"]["full"]
        ratio = measured / baseline
        if ratio > GENEROUS_ANCHOR_FACTOR or ratio < 1.0 / GENEROUS_ANCHOR_FACTOR:
            advisories.append(
                f"{sc['id']}: full-eval peek {measured} ns vs committed "
                f"{group}.{key} = {baseline} ns ({ratio:.1f}x; advisory "
                f"threshold {GENEROUS_ANCHOR_FACTOR}x either way)"
            )
    return advisories


def opt_scores(scenario):
    """Map of algo spec -> (best_score, evaluations) for one cell."""
    return {
        o["algo"]: (o["best_score"], o.get("evaluations"))
        for o in scenario.get("optimizers", [])
    }


def row_objective(row):
    """Objective a row scored under; files before schema /6 carry no
    field, and everything they recorded was the snr default."""
    return row.get("objective", "snr")


def check_neighborhood_quality(sweep):
    advisories = []
    for sc in sweep.get("scenarios", []):
        scores = opt_scores(sc)
        exhaustive = scores.get("r-pbla@exhaustive")
        streams = [
            (name, scores[name][0])
            for name in ("r-pbla@sampled", "r-pbla@locality")
            if name in scores
        ]
        if exhaustive is None or not streams:
            continue
        if sc["mesh"] < NEIGHBORHOOD_MESH_FLOOR:
            continue
        best_name, best = max(streams, key=lambda kv: kv[1])
        if best < exhaustive[0]:
            advisories.append(
                f"{sc['id']}: best budget-aware stream {best_name} = "
                f"{best:.3f} dB loses to r-pbla@exhaustive = "
                f"{exhaustive[0]:.3f} dB on a {sc['mesh']}x{sc['mesh']} "
                f"mesh (tentpole claim: sampled/locality win at 12x12+)"
            )
    return advisories


def portfolio_rows(scenario):
    """Portfolio optimizer rows of one cell (neighborhood tag)."""
    return [
        o
        for o in scenario.get("optimizers", [])
        if o.get("neighborhood") == "portfolio"
    ]


def check_portfolio_quality(sweep):
    """Returns (strict_findings, advisory_findings)."""
    strict = []
    advisories = []
    compared = wins = 0
    for sc in sweep.get("scenarios", []):
        if sc["mesh"] < NEIGHBORHOOD_MESH_FLOOR:
            continue
        rows = portfolio_rows(sc)
        if not rows:
            continue
        for row in rows:
            # Compare only against single lanes scoring under the same
            # objective — the !power/!margin rows live on a different
            # scale and would poison the max().
            lanes = [
                (o["algo"], o["best_score"])
                for o in sc.get("optimizers", [])
                if o["algo"].startswith("r-pbla@")
                and o.get("neighborhood") != "portfolio"
                and row_objective(o) == row_objective(row)
            ]
            if not lanes:
                continue
            best_lane_name, best_lane = max(lanes, key=lambda kv: kv[1])
            compared += 1
            margin = row["best_score"] - best_lane
            if margin >= 0:
                wins += 1
            if margin < -PORTFOLIO_TOLERANCE_DB:
                advisories.append(
                    f"{sc['id']}: portfolio {row['best_score']:.3f} dB trails the "
                    f"best single lane {best_lane_name} = {best_lane:.3f} dB by "
                    f"{-margin:.3f} dB at equal total budget (tolerance "
                    f"{PORTFOLIO_TOLERANCE_DB} dB)"
                )
    if compared:
        share = wins / compared
        print(
            f"bench_gate: portfolio meets/beats the best single lane on "
            f"{wins}/{compared} large cells ({share:.0%}; required "
            f">= {PORTFOLIO_WIN_SHARE:.0%})"
        )
        if share < PORTFOLIO_WIN_SHARE:
            strict.append(
                f"portfolio win share {share:.0%} over {compared} 12x12+ cells is "
                f"below the required {PORTFOLIO_WIN_SHARE:.0%}"
            )
    return strict, advisories


def sweep_schema_version(sweep):
    """Numeric suffix of the schema tag, 0 when missing/unparseable."""
    tag = sweep.get("schema", "")
    try:
        return int(tag.rsplit("/", 1)[1])
    except (IndexError, ValueError):
        return 0


def check_power_columns(sweep):
    """Returns quality findings for the power-objective columns.

    Schema /6 sweeps run the objective-suffixed specs on every cell;
    a cell without them (or with a degenerate row) means the column
    silently fell out of the matrix. Pre-/6 files are skipped — they
    predate the power objectives.
    """
    findings = []
    if sweep_schema_version(sweep) < 6:
        return findings
    cells = power_cells = power_rows = 0
    for sc in sweep.get("scenarios", []):
        cells += 1
        rows = [
            o
            for o in sc.get("optimizers", [])
            if row_objective(o) not in ("snr", "loss")
        ]
        if not rows:
            findings.append(
                f"{sc['id']}: no power-objective optimizer row (schema /6 "
                f"sweeps run the !power columns on every cell)"
            )
            continue
        power_cells += 1
        for o in rows:
            power_rows += 1
            score = o.get("best_score")
            if not isinstance(score, (int, float)) or score != score:
                findings.append(
                    f"{sc['id']}/{o['algo']}: power-objective score {score!r} "
                    f"is not a finite number"
                )
            if not o.get("evaluations"):
                findings.append(
                    f"{sc['id']}/{o['algo']}: power-objective row consumed no "
                    f"optimizer budget (evaluations = "
                    f"{o.get('evaluations')!r})"
                )
    if cells:
        print(
            f"bench_gate: power-objective columns present on "
            f"{power_cells}/{cells} cells ({power_rows} rows)"
        )
    return findings


DEPRECATED_ENTRY_POINTS = (
    "run_dse_with_strategy",
    "run_dse_with_policy",
    "run_dse_configured",
    "run_dse_session",
)
# Files allowed to mention the deprecated names: the definitions, their
# re-exports, and this script's own documentation.
DEPRECATION_ALLOWED = (
    "crates/phonoc-core/src/engine.rs",
    "crates/phonoc-core/src/lib.rs",
    "scripts/bench_gate.py",
)


def check_deprecated_callers(root):
    """Returns quality findings: in-tree users of the deprecated
    `run_dse_*` wrappers outside their defining/re-exporting files."""
    import os

    findings = []
    for base in ("crates", "src"):
        for dirpath, _dirnames, filenames in os.walk(os.path.join(root, base)):
            for fname in filenames:
                if not fname.endswith(".rs"):
                    continue
                path = os.path.join(dirpath, fname)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                if rel in DEPRECATION_ALLOWED:
                    continue
                try:
                    with open(path, encoding="utf-8") as fh:
                        lines = fh.readlines()
                except OSError as exc:
                    findings.append(f"{rel}: unreadable ({exc})")
                    continue
                for lineno, line in enumerate(lines, 1):
                    for name in DEPRECATED_ENTRY_POINTS:
                        if name in line:
                            findings.append(
                                f"{rel}:{lineno}: uses deprecated `{name}` — "
                                f"migrate to run_dse(problem, optimizer, "
                                f"&DseConfig)"
                            )
    if not findings:
        print(
            "bench_gate: deprecation lint clean — no in-tree callers of "
            "the deprecated run_dse_* wrappers"
        )
    return findings


def check_score_drift(sweep, baseline):
    advisories = []
    committed = {sc["id"]: opt_scores(sc) for sc in baseline.get("scenarios", [])}
    compared = 0
    for sc in sweep.get("scenarios", []):
        base = committed.get(sc["id"])
        if base is None:
            continue
        for algo, (score, evals) in opt_scores(sc).items():
            if algo not in base:
                continue
            base_score, base_evals = base[algo]
            if evals != base_evals:
                # Different budgets legitimately score differently.
                continue
            compared += 1
            # Two-sided: determinism means *any* equal-budget difference
            # (better or worse) is a behavioral change worth knowing.
            if abs(score - base_score) > SCORE_DRIFT_DB:
                advisories.append(
                    f"{sc['id']}/{algo}: score {score:.3f} dB diverges from "
                    f"committed {base_score:.3f} dB at the same budget "
                    f"({evals} evals) — optimizer runs are deterministic per "
                    f"seed, so this is a behavioral change"
                )
    print(f"bench_gate: {compared} (cell, algo) score pairs compared to baseline")
    return advisories


def check_warmstart(report):
    """Returns (quality_findings, advisory_findings) for a replay report.

    The hit checks are deterministic data (a cache either returned the
    stored result or it did not), so they land in the quality bucket —
    fatal under --strict-quality like checks 3 and 5.
    """
    findings = []
    advisories = []
    cells = report.get("cells", [])
    ratios = []
    for c in cells:
        hit = c.get("exact_hit", {})
        if hit.get("evaluations", 1) != 0:
            findings.append(
                f"{c['id']}: exact-hit repeat performed "
                f"{hit.get('evaluations')} optimizer evaluations (must be 0)"
            )
        if not hit.get("score_matches", False):
            findings.append(
                f"{c['id']}: exact-hit result does not reproduce the cold "
                f"run bit-for-bit (results are deterministic per key)"
            )
        phase = c.get("phase", {})
        if not phase.get("return_exact_hit", False):
            findings.append(
                f"{c['id']}: replaying the original request after reverting "
                f"the phase mutation missed the cache — keys are not "
                f"canonicalizing edge order"
            )
        perturbed = c.get("perturbed", {})
        if c.get("mesh", 0) >= WARMSTART_MESH_FLOOR:
            ratio = perturbed.get("parity_ratio")
            if ratio is None:
                findings.append(
                    f"{c['id']}: perturbed warm run never reached the cold "
                    f"run's final score within the budget"
                )
            else:
                ratios.append((c["id"], ratio))
        warm = perturbed.get("warm_score")
        cold = perturbed.get("cold_score")
        if warm is not None and cold is not None and warm < cold - PORTFOLIO_TOLERANCE_DB:
            advisories.append(
                f"{c['id']}: warm-started score {warm:.3f} dB trails the cold "
                f"run {cold:.3f} dB (warm starts should never lose)"
            )
    if ratios:
        values = sorted(r for _, r in ratios)
        mid = len(values) // 2
        median = (
            values[mid]
            if len(values) % 2 == 1
            else (values[mid - 1] + values[mid]) / 2.0
        )
        print(
            f"bench_gate: warm-start parity on {len(ratios)} 12x12+ cells — "
            f"median ratio {median:.3f} of the cold budget (required "
            f"<= {WARMSTART_PARITY_RATIO})"
        )
        if median > WARMSTART_PARITY_RATIO:
            findings.append(
                f"median evaluations-to-parity ratio {median:.3f} over "
                f"{len(ratios)} 12x12+ cells exceeds {WARMSTART_PARITY_RATIO} "
                f"of the cold budget"
            )
    else:
        print(
            "bench_gate: warm-start report has no 12x12+ cells; parity gate "
            "skipped (hit checks still apply)"
        )
    return findings, advisories


def check_parallel(report):
    """Returns (quality_findings, advisory_findings) for a parallel
    dispatch report.

    Per-cell overruns are advisories (timing noise); the median ratio
    and the crossover ordering are the pool's core claim — quality
    findings, fatal under --strict-quality.
    """
    findings = []
    advisories = []
    cells = report.get("cells", [])
    ratios = []
    for c in cells:
        ratio = c["pool_ns"] / max(c["spawn_ns"], 1)
        ratios.append(ratio)
        if ratio > PARALLEL_CELL_SLACK:
            advisories.append(
                f"{c['cost']}@{c['workers']}w/{c['batch']}: pool {c['pool_ns']:.0f} ns "
                f"is {ratio:.2f}x the scope-spawn reference "
                f"{c['spawn_ns']:.0f} ns (slack {PARALLEL_CELL_SLACK}x)"
            )
    if ratios:
        values = sorted(ratios)
        mid = len(values) // 2
        median = (
            values[mid]
            if len(values) % 2 == 1
            else (values[mid - 1] + values[mid]) / 2.0
        )
        print(
            f"bench_gate: parallel dispatch — median pool/spawn ratio "
            f"{median:.3f} over {len(ratios)} cells (required <= 1.0)"
        )
        if median > 1.0:
            findings.append(
                f"median pool/spawn dispatch ratio {median:.3f} over "
                f"{len(ratios)} cells exceeds 1.0 — the persistent pool "
                f"costs more than spawning fresh threads"
            )
    else:
        findings.append("parallel report has no cells")
    for x in report.get("crossovers", []):
        spawn_batch = x.get("spawn_batch")
        pool_batch = x.get("pool_batch")
        if spawn_batch is not None and (pool_batch is None or pool_batch > spawn_batch):
            findings.append(
                f"{x['cost']}@{x['workers']}w: pool reaches sequential parity at "
                f"batch {pool_batch} but the spawn path already did at "
                f"{spawn_batch} — pool crossover must come first"
            )
    return findings, advisories


def median(values):
    values = sorted(values)
    mid = len(values) // 2
    if len(values) % 2 == 1:
        return values[mid]
    return (values[mid - 1] + values[mid]) / 2.0


def finite(value):
    return isinstance(value, (int, float)) and value == value and value not in (
        float("inf"),
        float("-inf"),
    )


def check_gaps(sweep, baseline):
    """Returns quality findings for the optimality-gap columns.

    Everything here is deterministic data — the bound computation and
    the branch-and-bound proof reproduce byte-for-byte per (cell, seed,
    budget) — so every finding is fatal under --strict-quality.
    """
    findings = []
    if sweep_schema_version(sweep) < 7:
        findings.append(
            f"--gaps requires schema phonocmap-bench-sweep/7+ (got "
            f"{sweep.get('schema')!r}) — regenerate the sweep"
        )
        return findings
    rows = 0
    proved = {}
    gaps_by_objective = {}
    for sc in sweep.get("scenarios", []):
        for o in sc.get("optimizers", []):
            rows += 1
            label = f"{sc['id']}/{o['algo']}"
            lower = o.get("lower_bound")
            gap = o.get("gap_db")
            if not finite(lower) or not finite(gap):
                findings.append(
                    f"{label}: lower_bound {lower!r} / gap_db {gap!r} must "
                    f"be finite numbers on every row"
                )
                continue
            if gap < -GAP_EPSILON_DB:
                findings.append(
                    f"{label}: gap_db {gap} is negative — the bound "
                    f"{lower} does not dominate the achieved score "
                    f"{o.get('best_score')} (inadmissible bound)"
                )
            if o.get("proved_optimal") and gap != 0.0:
                findings.append(
                    f"{label}: proved_optimal with gap_db {gap} — a proved "
                    f"cell's bound must equal its optimum exactly"
                )
            proved[label] = bool(o.get("proved_optimal"))
            gaps_by_objective.setdefault(row_objective(o), []).append(gap)
    proved_count = sum(proved.values())
    print(
        f"bench_gate: gap columns on {rows} rows — {proved_count} proved "
        f"optimal; median gap per objective: "
        + ", ".join(
            f"{obj}={median(gaps):.3f}"
            for obj, gaps in sorted(gaps_by_objective.items())
        )
    )
    if baseline is None or sweep_schema_version(baseline) < 7:
        return findings
    base_proved = set()
    base_gaps = {}
    for sc in baseline.get("scenarios", []):
        for o in sc.get("optimizers", []):
            if o.get("proved_optimal"):
                base_proved.add(f"{sc['id']}/{o['algo']}")
            gap = o.get("gap_db")
            if finite(gap):
                base_gaps.setdefault(row_objective(o), []).append(gap)
    for label in sorted(base_proved):
        if label in proved and not proved[label]:
            findings.append(
                f"{label}: was proved_optimal in the baseline but is not "
                f"anymore — the proved set must never shrink"
            )
    for obj, gaps in sorted(gaps_by_objective.items()):
        if obj not in base_gaps:
            continue
        fresh, committed = median(gaps), median(base_gaps[obj])
        if fresh > committed + GAP_WIDEN_DB:
            findings.append(
                f"!{obj}: median gap widened from {committed:.3f} dB to "
                f"{fresh:.3f} dB (tolerance {GAP_WIDEN_DB} dB) — the bound "
                f"got looser or the search stopped reaching it"
            )
    return findings


TRACE_SCHEMA = "phonocmap-trace/1"
# JSONL `ev` tags, mirroring phonoc_core::telemetry::render_trace.
TRACE_EVENT_TAGS = {
    "peek",
    "improved",
    "widen",
    "dry_scan",
    "narrow",
    "lane_round",
    "collapse",
    "warm_lookup",
    "exact_summary",
    "exact_cuts",
    "session_end",
}
# peek `route` field -> the session_end counter it must sum to.
TRACE_ROUTE_COUNTERS = {
    "full": "full_peeks",
    "delta": "delta_exact",
    "loss": "loss_fast_path",
    "bound_rejected": "bound_rejected",
    "bound_verified": "bound_verified",
}


def check_trace(path):
    """Returns quality findings for one phonocmap-trace/1 JSONL file.

    Traces are deterministic data (integer payloads, no wall-clock), so
    every violation is a quality finding, fatal under --strict-quality.
    """
    findings = []
    try:
        with open(path, encoding="utf-8") as fh:
            lines = [line for line in fh.read().splitlines() if line]
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]
    if not lines:
        return [f"{path}: empty file — even a sink-off trace has a header line"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"{path}: header line is not valid JSON ({exc})"]
    if header.get("schema") != TRACE_SCHEMA:
        findings.append(
            f"{path}: header schema {header.get('schema')!r} is not "
            f"{TRACE_SCHEMA!r}"
        )
    declared = header.get("events")
    event_lines = lines[1:]
    if declared != len(event_lines):
        findings.append(
            f"{path}: header declares {declared!r} events but "
            f"{len(event_lines)} event lines follow"
        )
    events = []
    for lineno, line in enumerate(event_lines, 2):
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as exc:
            findings.append(f"{path}:{lineno}: not valid JSON ({exc})")
            continue
        tag = ev.get("ev")
        if tag not in TRACE_EVENT_TAGS:
            findings.append(f"{path}:{lineno}: unknown event tag {tag!r}")
            continue
        events.append(ev)
    sessions = [ev for ev in events if ev["ev"] == "session_end"]
    if events and not sessions:
        findings.append(
            f"{path}: trace has events but no session_end summary"
        )
    totals = {counter: 0 for counter in TRACE_ROUTE_COUNTERS.values()}
    for ev in sessions:
        full = ev.get("full_peeks", 0) + ev.get("full_direct", 0)
        if ev.get("full_evaluations") != full:
            findings.append(
                f"{path}: session_end full_evaluations "
                f"{ev.get('full_evaluations')} != full_peeks + full_direct "
                f"= {full} — route counters must partition the ledger"
            )
        delta = (
            ev.get("delta_exact", 0)
            + ev.get("loss_fast_path", 0)
            + ev.get("bound_rejected", 0)
            + ev.get("bound_verified", 0)
            + ev.get("bound_charges", 0)
        )
        if ev.get("delta_evaluations") != delta:
            findings.append(
                f"{path}: session_end delta_evaluations "
                f"{ev.get('delta_evaluations')} != sum of delta route "
                f"counters = {delta} — route counters must partition the "
                f"ledger"
            )
        for counter in totals:
            totals[counter] += ev.get(counter, 0)
    peek_counts = {route: 0 for route in TRACE_ROUTE_COUNTERS}
    for ev in events:
        if ev["ev"] != "peek":
            continue
        route = ev.get("route")
        if route not in peek_counts:
            findings.append(f"{path}: peek event has unknown route {route!r}")
            continue
        peek_counts[route] += 1
    if any(peek_counts.values()):
        # Per-peek events are only recorded by single-session traces
        # (portfolio lanes report through session_end totals); when they
        # are present they must match the counters exactly.
        for route, counter in TRACE_ROUTE_COUNTERS.items():
            if peek_counts[route] != totals[counter]:
                findings.append(
                    f"{path}: {peek_counts[route]} peek events on route "
                    f"'{route}' but session counters sum to "
                    f"{totals[counter]}"
                )
    print(
        f"bench_gate: trace {path} — {len(event_lines)} events, "
        f"{len(sessions)} session(s)"
        + (" (header-only: sink off)" if not event_lines else "")
    )
    return findings


def main(argv):
    args = []
    strict = False
    strict_quality = False
    gaps = False
    baseline_path = None
    warmstart_path = None
    parallel_path = None
    lint_root = None
    trace_paths = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--strict":
            strict = True
        elif arg == "--strict-quality":
            strict_quality = True
        elif arg == "--gaps":
            gaps = True
        elif arg == "--baseline":
            if i + 1 >= len(argv):
                print("bench_gate: --baseline needs a path", file=sys.stderr)
                return 2
            baseline_path = argv[i + 1]
            i += 1
        elif arg == "--warmstart":
            if i + 1 >= len(argv):
                print("bench_gate: --warmstart needs a path", file=sys.stderr)
                return 2
            warmstart_path = argv[i + 1]
            i += 1
        elif arg == "--parallel":
            if i + 1 >= len(argv):
                print("bench_gate: --parallel needs a path", file=sys.stderr)
                return 2
            parallel_path = argv[i + 1]
            i += 1
        elif arg == "--lint-deprecated":
            if i + 1 >= len(argv):
                print("bench_gate: --lint-deprecated needs a path", file=sys.stderr)
                return 2
            lint_root = argv[i + 1]
            i += 1
        elif arg == "--trace":
            if i + 1 >= len(argv):
                print("bench_gate: --trace needs a path", file=sys.stderr)
                return 2
            trace_paths.append(argv[i + 1])
            i += 1
        elif arg.startswith("--"):
            print(f"bench_gate: unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            args.append(arg)
        i += 1
    if (
        not args
        and not warmstart_path
        and not parallel_path
        and not lint_root
        and not trace_paths
    ):
        print(__doc__)
        return 2
    advisories = []
    quality_advisories = []
    baseline = load(baseline_path) if baseline_path else None
    if args:
        sweep = load(args[0])
        advisories += check_hybrid(sweep)
        if len(args) > 1:
            advisories += check_anchors(sweep, load(args[1]))
        quality_advisories += check_neighborhood_quality(sweep)
        portfolio_strict, portfolio_advisories = check_portfolio_quality(sweep)
        quality_advisories += portfolio_strict
        quality_advisories += check_power_columns(sweep)
        if gaps:
            gap_findings = check_gaps(sweep, baseline)
            quality_advisories += gap_findings
        advisories += quality_advisories + portfolio_advisories
        if baseline is not None:
            advisories += check_score_drift(sweep, baseline)
        n = len(sweep.get("scenarios", []))
        summary = sweep.get("summary", {})
        print(
            f"bench_gate: {n} scenarios, "
            f"max_hybrid_over_best={summary.get('max_hybrid_over_best', 'n/a')}"
        )
    if warmstart_path:
        warm_quality, warm_advisories = check_warmstart(load(warmstart_path))
        quality_advisories += warm_quality
        advisories += warm_quality + warm_advisories
    if parallel_path:
        par_quality, par_advisories = check_parallel(load(parallel_path))
        quality_advisories += par_quality
        advisories += par_quality + par_advisories
    if lint_root:
        lint_findings = check_deprecated_callers(lint_root)
        quality_advisories += lint_findings
        advisories += lint_findings
    for trace_path in trace_paths:
        trace_findings = check_trace(trace_path)
        quality_advisories += trace_findings
        advisories += trace_findings
    if advisories:
        print(f"bench_gate: {len(advisories)} advisory finding(s):")
        for a in advisories:
            print(f"  - {a}")
        if strict:
            return 1
        if strict_quality and quality_advisories:
            print(
                "bench_gate: quality claim (neighborhood/portfolio/power/"
                "gaps/warm-start/parallel/deprecation/trace) violated — fatal"
            )
            return 1
        print("bench_gate: advisory mode — not failing the build")
    else:
        print("bench_gate: all checks within generous thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
