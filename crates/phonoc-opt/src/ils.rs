//! Iterated local search (extension): perturb-and-descend, the natural
//! middle ground between R-PBLA's full restarts and tabu's continuous
//! walk.
//!
//! Each round starts from the best solution found so far, applies a
//! small random perturbation (a handful of swaps — the "kick"), and runs
//! first-improvement descent until a local optimum. Compared to R-PBLA's
//! random restarts, the kick preserves most of the incumbent's
//! structure, which pays off on problems whose good solutions share
//! large building blocks (grid embeddings do).
//!
//! The descent walks the budget-aware [`Neighborhood`] stream (shared
//! with R-PBLA and tabu): each pass's candidates are visited from a
//! random offset and delta-scored with
//! [`OptContext::peek_move_improving`] — the objective-aware peek that
//! rejects non-improving SNR moves via a cheap admissible bound and
//! scores the rest exactly — and the first improving one committed with
//! [`OptContext::apply_scored_move`]. A dry pass widens a locality
//! stream before the round is declared a local optimum.

use crate::neighborhood::{scan_quota, Neighborhood};
use phonoc_core::{MappingOptimizer, OptContext};
use rand::Rng;

/// Iterated local search with first-improvement descent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IteratedLocalSearch {
    /// Number of random swaps in each perturbation kick.
    pub kick_strength: usize,
}

impl Default for IteratedLocalSearch {
    fn default() -> Self {
        IteratedLocalSearch { kick_strength: 3 }
    }
}

impl MappingOptimizer for IteratedLocalSearch {
    fn name(&self) -> &'static str {
        "ils"
    }

    fn optimize(&self, ctx: &mut OptContext<'_>) {
        let mut nbhd = Neighborhood::new(ctx);

        // Seeded elite incumbent (portfolio rounds) or random start.
        let mut best = ctx.initial_mapping();
        let Some(mut best_score) = ctx.evaluate(&best) else {
            return;
        };
        if nbhd.admitted_len() == 0 {
            return;
        }

        'rounds: while !ctx.exhausted() {
            // Kick: perturb the incumbent, then make it the cursor (one
            // full evaluation, as before the move API).
            let mut kicked = best.clone();
            for _ in 0..self.kick_strength.max(1) {
                kicked.random_swap(ctx.rng());
            }
            let Some(mut current_score) = ctx.set_current(kicked) else {
                break;
            };
            nbhd.reset();

            // First-improvement descent over the neighbourhood stream.
            loop {
                let mut improved = false;
                let quota = scan_quota(ctx.remaining(), nbhd.admitted_len());
                let moves = nbhd.pass(ctx, quota);
                // Random starting offset decorrelates successive rounds
                // even under the (deterministically ordered) exhaustive
                // stream.
                let offset = ctx.rng().gen_range(0..moves.len().max(1));
                for i in 0..moves.len() {
                    let mv = moves[(i + offset) % moves.len()];
                    let Some(ev) = ctx.peek_move_improving(mv) else {
                        break 'rounds;
                    };
                    if ev.score() > current_score {
                        ctx.apply_scored_move(&ev);
                        current_score = ev.score();
                        improved = true;
                        break;
                    }
                }
                if improved {
                    let before = nbhd.radius();
                    nbhd.notify_improved();
                    if let (Some(b), Some(a)) = (before, nbhd.radius()) {
                        if a < b {
                            ctx.note_narrowed(a);
                        }
                    }
                    continue;
                }
                ctx.note_scan_dry(nbhd.radius().unwrap_or(0));
                if !nbhd.widen() {
                    break;
                }
                ctx.note_widened(nbhd.radius().unwrap_or(0));
            }
            if current_score > best_score {
                best = ctx.current_mapping().expect("cursor set").clone();
                best_score = current_score;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_search::RandomSearch;
    use crate::test_support::tiny_problem;
    use phonoc_core::{run_dse, DseConfig, PeekStrategy};

    #[test]
    fn respects_budget_and_validity() {
        let p = tiny_problem();
        let r = run_dse(&p, &IteratedLocalSearch::default(), &DseConfig::new(600, 4));
        assert_eq!(r.evaluations, 600);
        assert!(r.best_mapping.is_valid());
        let rd = run_dse(
            &p,
            &IteratedLocalSearch::default(),
            &DseConfig::new(600, 4).with_strategy(PeekStrategy::Delta),
        );
        assert!(rd.delta_evaluations > 0, "ils must descend on the move API");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = tiny_problem();
        let a = run_dse(
            &p,
            &IteratedLocalSearch::default(),
            &DseConfig::new(400, 21),
        );
        let b = run_dse(
            &p,
            &IteratedLocalSearch::default(),
            &DseConfig::new(400, 21),
        );
        assert_eq!(a.best_mapping, b.best_mapping);
    }

    #[test]
    fn not_worse_than_random_search() {
        let p = tiny_problem();
        let rs = run_dse(&p, &RandomSearch, &DseConfig::new(900, 8));
        let ils = run_dse(&p, &IteratedLocalSearch::default(), &DseConfig::new(900, 8));
        assert!(
            ils.best_score >= rs.best_score - 0.5,
            "ils {} far below rs {}",
            ils.best_score,
            rs.best_score
        );
    }

    #[test]
    fn strong_kicks_still_work() {
        let p = tiny_problem();
        let ils = IteratedLocalSearch { kick_strength: 10 };
        let r = run_dse(&p, &ils, &DseConfig::new(300, 2));
        assert!(r.best_mapping.is_valid());
    }
}
