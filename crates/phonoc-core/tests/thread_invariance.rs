//! Thread-count invariance: every parallel entry point must return
//! **bit-identical** results whatever the worker count — the half of
//! the "multi-core verification" ROADMAP item that a single-core
//! container *can* verify. The worker count is pinned through
//! [`phonoc_core::parallel::set_worker_override`] (the same knob the
//! CI worker matrix drives via `PHONOC_WORKERS`), and each property
//! compares a 1-worker reference run against 2- and 4-worker reruns of
//! identical work.
//!
//! The override is process-global, so every test serializes on one
//! mutex and restores the default before releasing it.

use phonoc_core::parallel::{parallel_map, parallel_map_tasks, set_worker_override};
use phonoc_core::{Mapping, MappingProblem, Move, MoveEval, Objective, OptContext};
use phonoc_phys::{Length, PhysicalParameters};
use phonoc_route::XyRouting;
use phonoc_router::crux::crux_router;
use phonoc_topo::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard};

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Locks the override for one test and restores the default on drop.
struct Pinned<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

impl Drop for Pinned<'_> {
    fn drop(&mut self) {
        set_worker_override(None);
    }
}

fn pin() -> Pinned<'static> {
    Pinned(OVERRIDE_LOCK.lock().unwrap())
}

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn problem(mesh: usize, density: u32, seed: u64) -> MappingProblem {
    use phonoc_apps::scenario::{ScenarioFamily, ScenarioSpec};
    let spec = ScenarioSpec {
        family: ScenarioFamily::Random,
        mesh,
        density_pct: density,
        seed,
    };
    MappingProblem::new(
        spec.build(),
        Topology::mesh(mesh, mesh, Length::from_mm(2.5)),
        crux_router(),
        Box::new(XyRouting),
        PhysicalParameters::default(),
        Objective::MaximizeWorstCaseSnr,
    )
    .unwrap()
}

#[test]
fn plain_maps_are_worker_count_invariant() {
    let _pin = pin();
    let items: Vec<u64> = (0..257).collect();
    set_worker_override(Some(1));
    let reference = parallel_map(&items, |&x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
    let tasks_reference = parallel_map_tasks(&items, |&x| x ^ (x << 13));
    for workers in WORKER_COUNTS {
        set_worker_override(Some(workers));
        let fine = parallel_map(&items, |&x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        let coarse = parallel_map_tasks(&items, |&x| x ^ (x << 13));
        assert_eq!(fine, reference, "parallel_map @ {workers} workers");
        assert_eq!(coarse, tasks_reference, "parallel_map_tasks @ {workers}");
    }
}

#[test]
fn batch_evaluation_is_worker_count_invariant() {
    let _pin = pin();
    let p = problem(6, 150, 3);
    let mut rng = StdRng::seed_from_u64(99);
    // Enough mappings that 4 workers genuinely fork (≥ 4 × MIN_CHUNK).
    let mappings: Vec<Mapping> = (0..96)
        .map(|_| Mapping::random(p.task_count(), p.tile_count(), &mut rng))
        .collect();
    set_worker_override(Some(1));
    let reference = p.evaluator().evaluate_summaries_batch(&mappings);
    for workers in WORKER_COUNTS {
        set_worker_override(Some(workers));
        let batch = p.evaluator().evaluate_summaries_batch(&mappings);
        assert_eq!(batch.len(), reference.len());
        for (a, b) in batch.iter().zip(&reference) {
            // Bit-exact, not approximately equal.
            assert_eq!(a.worst_case_snr.0.to_bits(), b.worst_case_snr.0.to_bits());
            assert_eq!(a.worst_case_il.0.to_bits(), b.worst_case_il.0.to_bits());
        }
    }
}

#[test]
fn peek_scans_are_worker_count_invariant() {
    let _pin = pin();
    let p = problem(6, 200, 7);
    let tiles = p.tile_count();
    let moves: Vec<Move> = (0..tiles)
        .flat_map(|a| ((a + 1)..tiles).map(move |b| Move::Swap(a, b)))
        .collect();
    let start = Mapping::random(p.task_count(), tiles, &mut StdRng::seed_from_u64(5));

    let scan = |workers: usize, improving: bool| -> Vec<(Move, u64)> {
        set_worker_override(Some(workers));
        let mut ctx = OptContext::new(&p, 100_000, 1);
        ctx.set_current(start.clone()).unwrap();
        let evals = if improving {
            ctx.peek_moves_improving(&moves)
        } else {
            ctx.peek_moves(&moves)
        };
        evals
            .into_iter()
            .map(|ev| {
                let score = match ev {
                    MoveEval::Bounded { bound, .. } => bound.0,
                    ref exact => exact.score(),
                };
                (ev.mv(), score.to_bits())
            })
            .collect()
    };
    for improving in [false, true] {
        let reference = scan(1, improving);
        assert_eq!(reference.len(), moves.len());
        for workers in WORKER_COUNTS {
            assert_eq!(
                scan(workers, improving),
                reference,
                "improving={improving} @ {workers} workers"
            );
        }
    }
}
