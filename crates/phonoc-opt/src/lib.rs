//! Mapping optimization strategies for PhoNoCMap (paper Section II-D2).
//!
//! The paper ships three strategies — random search, a genetic algorithm
//! and the purpose-built R-PBLA — and explicitly invites users to
//! "extend the library themselves with other algorithms". This crate
//! implements all three plus two extensions (simulated annealing and
//! tabu search) and an exhaustive oracle for tiny instances; all of them
//! are plain [`MappingOptimizer`] implementations, so adding another
//! requires no change anywhere else.
//!
//! | Strategy | Type | Paper status |
//! |----------|------|--------------|
//! | [`RandomSearch`] | sampling | baseline (§II-D2) |
//! | [`GeneticAlgorithm`] | population | baseline (§II-D2) |
//! | [`Rpbla`] | best-move descent + restarts | the paper's contribution |
//! | [`SimulatedAnnealing`] | trajectory | "other strategies" slot |
//! | [`TabuSearch`] | trajectory | "other strategies" slot |
//! | [`Exhaustive`] | enumeration | test oracle |
//!
//! # Example
//!
//! ```
//! use phonoc_core::{run_dse, MappingProblem, Objective};
//! use phonoc_opt::Rpbla;
//! use phonoc_phys::{Length, PhysicalParameters};
//! use phonoc_route::XyRouting;
//! use phonoc_router::crux::crux_router;
//! use phonoc_topo::Topology;
//!
//! # fn main() -> Result<(), phonoc_core::CoreError> {
//! let problem = MappingProblem::new(
//!     phonoc_apps::benchmarks::pip(),
//!     Topology::mesh(3, 3, Length::from_mm(2.5)),
//!     crux_router(),
//!     Box::new(XyRouting),
//!     PhysicalParameters::default(),
//!     Objective::MaximizeWorstCaseSnr,
//! )?;
//! let result = run_dse(&problem, &Rpbla, 2_000, 42);
//! assert!(result.best_mapping.is_valid());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod annealing;
pub mod exhaustive;
pub mod genetic;
pub mod ils;
pub mod random_search;
pub mod registry;
pub mod rpbla;
pub mod tabu;

pub use annealing::SimulatedAnnealing;
pub use exhaustive::Exhaustive;
pub use genetic::{Crossover, GeneticAlgorithm};
pub use ils::IteratedLocalSearch;
pub use random_search::RandomSearch;
pub use registry::{builtin_names, optimizer};
pub use rpbla::Rpbla;
pub use tabu::TabuSearch;

#[cfg(test)]
pub(crate) mod test_support {
    use phonoc_core::{MappingProblem, Objective};
    use phonoc_phys::{Length, PhysicalParameters};
    use phonoc_route::XyRouting;
    use phonoc_router::crux::crux_router;
    use phonoc_topo::Topology;

    /// PIP on a 3×3 mesh: small enough for fast tests, structured enough
    /// that search beats luck.
    pub fn tiny_problem() -> MappingProblem {
        MappingProblem::new(
            phonoc_apps::benchmarks::pip(),
            Topology::mesh(3, 3, Length::from_mm(2.5)),
            crux_router(),
            Box::new(XyRouting),
            PhysicalParameters::default(),
            Objective::MaximizeWorstCaseSnr,
        )
        .unwrap()
    }

    /// A 3-task pipeline on a 2×2 mesh: 24 possible mappings, fully
    /// enumerable.
    pub fn micro_problem() -> MappingProblem {
        MappingProblem::new(
            phonoc_apps::synthetic::pipeline(3),
            Topology::mesh(2, 2, Length::from_mm(2.5)),
            crux_router(),
            Box::new(XyRouting),
            PhysicalParameters::default(),
            Objective::MinimizeWorstCaseLoss,
        )
        .unwrap()
    }
}
