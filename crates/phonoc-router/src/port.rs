//! Router port naming for 5-port optical routers.
//!
//! Every router in a direct-topology photonic NoC exposes five
//! bidirectional ports: four toward the cardinal neighbours and one toward
//! the local tile (injection/ejection).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the five ports of a mesh/torus optical router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Port {
    /// The local tile (injection on input, ejection on output).
    Local,
    /// Toward the neighbour with larger Y.
    North,
    /// Toward the neighbour with larger X.
    East,
    /// Toward the neighbour with smaller Y.
    South,
    /// Toward the neighbour with smaller X.
    West,
}

impl Port {
    /// All five ports, in index order.
    pub const ALL: [Port; 5] = [
        Port::Local,
        Port::North,
        Port::East,
        Port::South,
        Port::West,
    ];

    /// Dense index in `0..5`, matching the order of [`Port::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Port::Local => 0,
            Port::North => 1,
            Port::East => 2,
            Port::South => 3,
            Port::West => 4,
        }
    }

    /// The port a link from this port arrives at on the neighbouring
    /// router (North ↔ South, East ↔ West).
    ///
    /// # Panics
    ///
    /// Panics for [`Port::Local`], which never connects two routers.
    #[must_use]
    pub fn opposite(self) -> Port {
        match self {
            Port::North => Port::South,
            Port::South => Port::North,
            Port::East => Port::West,
            Port::West => Port::East,
            Port::Local => panic!("Local port has no opposite"),
        }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Port::Local => "L",
            Port::North => "N",
            Port::East => "E",
            Port::South => "S",
            Port::West => "W",
        };
        write!(f, "{s}")
    }
}

/// An ordered (input port, output port) pair identifying one connection
/// through a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortPair {
    /// The port the signal enters.
    pub input: Port,
    /// The port the signal leaves.
    pub output: Port,
}

impl PortPair {
    /// Creates a pair. `input == output` is representable (it indexes
    /// the diagonal) but no built-in router supports such a U-turn.
    #[must_use]
    pub fn new(input: Port, output: Port) -> Self {
        PortPair { input, output }
    }

    /// Dense index in `0..25` for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        self.input.index() * 5 + self.output.index()
    }

    /// All 25 ordered pairs (including the unused diagonal), in index
    /// order.
    pub fn all() -> impl Iterator<Item = PortPair> {
        Port::ALL
            .into_iter()
            .flat_map(|i| Port::ALL.into_iter().map(move |o| PortPair::new(i, o)))
    }
}

impl fmt::Display for PortPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.input, self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, p) in Port::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let pairs: Vec<PortPair> = PortPair::all().collect();
        assert_eq!(pairs.len(), 25);
        for (i, pair) in pairs.iter().enumerate() {
            assert_eq!(pair.index(), i);
        }
    }

    #[test]
    fn opposites_are_involutions() {
        for p in [Port::North, Port::East, Port::South, Port::West] {
            assert_eq!(p.opposite().opposite(), p);
            assert_ne!(p.opposite(), p);
        }
    }

    #[test]
    #[should_panic(expected = "no opposite")]
    fn local_has_no_opposite() {
        let _ = Port::Local.opposite();
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Port::North.to_string(), "N");
        assert_eq!(PortPair::new(Port::West, Port::Local).to_string(), "W→L");
    }
}
