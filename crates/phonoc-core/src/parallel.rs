//! Deterministic fork–join parallelism for batch evaluation.
//!
//! The environment this workspace builds in has no registry access, so
//! instead of `rayon` this module provides the one primitive the
//! evaluator needs — an order-preserving parallel map over a slice —
//! built on [`std::thread::scope`]. Results are returned in input
//! order regardless of scheduling, so every caller stays deterministic.
//! If `rayon` is ever vendored, only this module needs to change.

use std::num::NonZeroUsize;

/// Number of worker threads to use for `n` items: the machine's
/// available parallelism, capped by the item count.
fn workers_for(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(n)
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Falls back to a sequential loop when the batch is too small to be
/// worth forking (fewer than 2 items or a single-core machine).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, || (), move |_: &mut (), item| f(item))
}

/// Like [`parallel_map`], but hands each worker thread a private
/// scratch value built by `init` (e.g. reusable evaluation buffers).
pub fn parallel_map_with<S, T, R, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let workers = workers_for(items.len());
    if workers <= 1 || items.len() < 2 {
        let mut scratch = init();
        return items.iter().map(|item| f(&mut scratch, item)).collect();
    }

    // Contiguous chunks, one per worker; each worker returns its chunk's
    // results which are concatenated back in order.
    let chunk = items.len().div_ceil(workers);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(|| {
                    let mut scratch = init();
                    slice
                        .iter()
                        .map(|item| f(&mut scratch, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("batch evaluation worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * 3);
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn tiny_batches_work() {
        assert_eq!(parallel_map(&[] as &[usize], |&x| x), Vec::<usize>::new());
        assert_eq!(parallel_map(&[7usize], |&x| x + 1), vec![8]);
    }

    #[test]
    fn scratch_is_per_worker() {
        let items: Vec<usize> = (0..64).collect();
        // The scratch counter only ever increments within one worker, so
        // every result is the 1-based index within its chunk — never 0.
        let out = parallel_map_with(
            &items,
            || 0usize,
            |count, &x| {
                *count += 1;
                (x, *count)
            },
        );
        assert_eq!(out.len(), 64);
        for (i, &(x, c)) in out.iter().enumerate() {
            assert_eq!(x, i);
            assert!(c >= 1);
        }
    }
}
