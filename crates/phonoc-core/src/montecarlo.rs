//! Monte-Carlo validation of the worst-case crosstalk analysis
//! (extension).
//!
//! The paper's evaluator assumes *all* communications transmit
//! simultaneously — the worst case. Real traffic has duty cycles below
//! one, so the realized SNR of any communication is at least the
//! worst-case figure. This module samples random activity patterns
//! (each communication independently active with probability
//! `activity`) and aggregates the realized worst-case SNR distribution,
//! giving two things:
//!
//! * a **validation oracle**: no sampled configuration may ever be worse
//!   than the analytical worst case (property-tested),
//! * a **pessimism estimate**: how much margin the worst-case bound
//!   leaves at realistic duty cycles, which is the data a designer needs
//!   to decide whether worst-case sizing of the laser is wasteful.
//!
//! # Examples
//!
//! ```
//! use phonoc_core::montecarlo::{activity_study, ActivityStudy};
//! use phonoc_core::{Mapping, MappingProblem, Objective};
//! use phonoc_phys::{Length, PhysicalParameters};
//! use phonoc_route::XyRouting;
//! use phonoc_router::crux::crux_router;
//! use phonoc_topo::Topology;
//!
//! # fn main() -> Result<(), phonoc_core::CoreError> {
//! let problem = MappingProblem::new(
//!     phonoc_apps::benchmarks::pip(),
//!     Topology::mesh(3, 3, Length::from_mm(2.5)),
//!     crux_router(),
//!     Box::new(XyRouting),
//!     PhysicalParameters::default(),
//!     Objective::MaximizeWorstCaseSnr,
//! )?;
//! let mapping = Mapping::identity(8, 9);
//! let study: ActivityStudy = activity_study(&problem, &mapping, 0.5, 200, 7);
//! assert!(study.min_sampled_snr >= study.worst_case_snr);
//! # Ok(())
//! # }
//! ```

use crate::mapping::Mapping;
use crate::problem::MappingProblem;
use phonoc_phys::Db;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of a Monte-Carlo activity study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityStudy {
    /// Per-communication activity probability used for sampling.
    pub activity: f64,
    /// Number of sampled activity patterns.
    pub samples: usize,
    /// The analytical worst case (all communications active).
    pub worst_case_snr: Db,
    /// Worst realized SNR over all samples (≥ `worst_case_snr`).
    pub min_sampled_snr: Db,
    /// Mean over samples of the realized worst-case SNR.
    pub mean_sampled_snr: Db,
    /// Fraction of samples whose realized worst case equals the SNR
    /// ceiling (no interference at all).
    pub interference_free_fraction: f64,
}

impl ActivityStudy {
    /// The pessimism margin of the worst-case bound at this duty cycle:
    /// `mean_sampled − worst_case` in dB.
    #[must_use]
    pub fn pessimism(&self) -> Db {
        self.mean_sampled_snr - self.worst_case_snr
    }
}

/// Samples `samples` random activity patterns (each communication active
/// independently with probability `activity`) and summarizes the
/// realized worst-case SNR.
///
/// # Panics
///
/// Panics if `activity` is outside `[0, 1]` or `samples == 0`.
#[must_use]
pub fn activity_study(
    problem: &MappingProblem,
    mapping: &Mapping,
    activity: f64,
    samples: usize,
    seed: u64,
) -> ActivityStudy {
    assert!((0.0..=1.0).contains(&activity), "activity must be in [0,1]");
    assert!(samples > 0, "need at least one sample");
    let evaluator = problem.evaluator();
    let edge_count = evaluator.edge_count();
    let worst = evaluator.evaluate(mapping).worst_case_snr;
    let ceiling = evaluator.snr_ceiling();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut mask = vec![false; edge_count];
    let mut min_snr = f64::INFINITY;
    let mut sum_snr = 0.0f64;
    let mut free = 0usize;
    // One reused scratch for the whole sampling loop: after the first
    // sample, evaluations are allocation-free.
    let mut scratch = crate::evaluator::EvalScratch::default();
    for _ in 0..samples {
        for slot in &mut mask {
            *slot = rng.gen_bool(activity);
        }
        let summary = evaluator.evaluate_into(mapping, Some(&mask), &mut scratch);
        let snr = summary.worst_case_snr.0;
        min_snr = min_snr.min(snr);
        sum_snr += snr;
        if (snr - ceiling.0).abs() < 1e-12 {
            free += 1;
        }
    }
    ActivityStudy {
        activity,
        samples,
        worst_case_snr: worst,
        min_sampled_snr: Db(min_snr),
        mean_sampled_snr: Db(sum_snr / samples as f64),
        interference_free_fraction: free as f64 / samples as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Objective;
    use phonoc_phys::{Length, PhysicalParameters};
    use phonoc_route::XyRouting;
    use phonoc_router::crux::crux_router;
    use phonoc_topo::Topology;

    fn problem() -> MappingProblem {
        MappingProblem::new(
            phonoc_apps::benchmarks::mpeg4(),
            Topology::mesh(4, 3, Length::from_mm(2.5)),
            crux_router(),
            Box::new(XyRouting),
            PhysicalParameters::default(),
            Objective::MaximizeWorstCaseSnr,
        )
        .unwrap()
    }

    #[test]
    fn worst_case_bounds_every_sample() {
        let p = problem();
        let m = Mapping::identity(p.task_count(), p.tile_count());
        for activity in [0.1, 0.5, 0.9] {
            let s = activity_study(&p, &m, activity, 300, 11);
            assert!(
                s.min_sampled_snr >= s.worst_case_snr,
                "activity {activity}: sampled {} below bound {}",
                s.min_sampled_snr,
                s.worst_case_snr
            );
        }
    }

    #[test]
    fn full_activity_recovers_the_worst_case() {
        let p = problem();
        let m = Mapping::identity(p.task_count(), p.tile_count());
        let s = activity_study(&p, &m, 1.0, 5, 3);
        assert_eq!(s.min_sampled_snr, s.worst_case_snr);
        assert_eq!(s.mean_sampled_snr, s.worst_case_snr);
    }

    #[test]
    fn zero_activity_is_interference_free() {
        let p = problem();
        let m = Mapping::identity(p.task_count(), p.tile_count());
        let s = activity_study(&p, &m, 0.0, 10, 3);
        assert!((s.interference_free_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lower_duty_cycles_mean_more_margin() {
        let p = problem();
        let m = Mapping::identity(p.task_count(), p.tile_count());
        let low = activity_study(&p, &m, 0.2, 400, 9);
        let high = activity_study(&p, &m, 0.9, 400, 9);
        assert!(
            low.mean_sampled_snr >= high.mean_sampled_snr,
            "less activity cannot mean more noise: {} vs {}",
            low.mean_sampled_snr,
            high.mean_sampled_snr
        );
        assert!(low.pessimism().0 >= 0.0);
    }

    #[test]
    #[should_panic(expected = "activity")]
    fn rejects_bad_activity() {
        let p = problem();
        let m = Mapping::identity(p.task_count(), p.tile_count());
        let _ = activity_study(&p, &m, 1.5, 10, 0);
    }
}
