//! Calibration tests: the observable *shapes* of the paper's evaluation
//! must hold in this reproduction (DESIGN.md §4). These are the
//! assertions that keep the model honest — if a refactor breaks one of
//! these, the reproduction no longer tells the paper's story.

use phonocmap::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mesh_problem(app: &str, objective: Objective) -> MappingProblem {
    let cg = benchmarks::benchmark(app).expect("known benchmark");
    let (w, h) = fit_grid(cg.task_count());
    MappingProblem::new(
        cg,
        Topology::mesh(w, h, Length::from_mm(2.5)),
        crux_router(),
        Box::new(XyRouting),
        PhysicalParameters::default(),
        objective,
    )
    .expect("assembles")
}

/// The hand-constructed grid embedding of VOPD: every one of its 20
/// communications is tile-adjacent (see `phonoc-apps::benchmarks::vopd`
/// and DESIGN.md §5). Task order follows the VOPD builder.
fn vopd_embedding() -> Mapping {
    let tiles = [
        0,  // demux  (0,0)
        1,  // vld    (1,0)
        2,  // run_le_dec (2,0)
        3,  // inv_scan   (3,0)
        7,  // ac_dc_pred (3,1)
        11, // stripe_mem (3,2)
        6,  // iquan  (2,1)
        5,  // idct   (1,1)
        9,  // up_samp (1,2)
        8,  // vop_rec (0,2)
        12, // pad    (0,3)
        13, // vop_mem (1,3)
        14, // smooth (2,3)
        4,  // arm    (0,1)
        10, // mem_ctrl (2,2)
        15, // disp   (3,3)
    ];
    Mapping::from_assignment(tiles.into_iter().map(TileId).collect(), 16).expect("valid embedding")
}

#[test]
fn vopd_embedding_is_truly_adjacent() {
    let cg = benchmarks::vopd();
    let topo = Topology::mesh(4, 4, Length::from_mm(2.5));
    let m = vopd_embedding();
    for e in cg.edges() {
        let a = topo.coord(m.tile_of_task(e.src.0));
        let b = topo.coord(m.tile_of_task(e.dst.0));
        let dist = a.x.abs_diff(b.x) + a.y.abs_diff(b.y);
        assert_eq!(
            dist,
            1,
            "{} → {} spans {dist} hops",
            cg.task_name(e.src),
            cg.task_name(e.dst)
        );
    }
}

#[test]
fn embedded_vopd_reaches_the_snr_plateau() {
    // Paper Table II: optimized VOPD mesh SNR ≈ 38 dB — the
    // crossing-noise-limited plateau. Our reconstruction must put a
    // fully adjacent mapping in that same plateau (> 30 dB), far above
    // the OFF-leak-limited band (< 25 dB).
    let p = mesh_problem("VOPD", Objective::MaximizeWorstCaseSnr);
    let (metrics, _) = p.evaluate(&vopd_embedding());
    assert!(
        metrics.worst_case_snr.0 > 30.0,
        "embedding should hit the plateau, got {}",
        metrics.worst_case_snr
    );
}

#[test]
fn embedded_vopd_loss_matches_single_hop_band() {
    // All-adjacent communications: inject + one link + eject
    // ≈ −(0.75 + 0.0685 + 0.54) ≈ −1.36 dB; allow the injection-chain
    // spread. Paper's optimized VOPD loss: −1.52 dB.
    let p = mesh_problem("VOPD", Objective::MinimizeWorstCaseLoss);
    let (metrics, _) = p.evaluate(&vopd_embedding());
    assert!(
        metrics.worst_case_il.0 > -1.6 && metrics.worst_case_il.0 < -1.2,
        "single-hop worst-case loss out of band: {}",
        metrics.worst_case_il
    );
}

#[test]
fn random_mappings_are_far_from_the_plateau() {
    // Fig. 3's point: random mappings of the dense apps live in the
    // 5–25 dB SNR band.
    let p = mesh_problem("VOPD", Objective::MaximizeWorstCaseSnr);
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..50 {
        let m = Mapping::random(p.task_count(), p.tile_count(), &mut rng);
        let (metrics, _) = p.evaluate(&m);
        assert!(
            metrics.worst_case_snr.0 < 30.0,
            "a random VOPD mapping should not reach the plateau: {}",
            metrics.worst_case_snr
        );
    }
}

#[test]
fn hub_limited_mpeg4_cannot_reach_the_plateau() {
    // MPEG-4's SDRAM hub (degree 16 > grid degree 4) forces multi-hop
    // communications, capping SNR around 20 dB — exactly what the
    // paper's Table II shows (19.06–21.08 across all algorithms).
    let p = mesh_problem("MPEG-4", Objective::MaximizeWorstCaseSnr);
    let r = run_dse(&p, &Rpbla, &DseConfig::new(10_000, 3));
    assert!(
        r.best_score < 30.0,
        "MPEG-4 must stay hub-limited, got {}",
        r.best_score
    );
    assert!(
        r.best_score > 10.0,
        "but optimization should lift it above the random floor: {}",
        r.best_score
    );
}

#[test]
fn losses_land_in_the_papers_band() {
    // Paper Table II loss values: −1.52 … −3.18 dB across all apps and
    // topologies. Random mappings may be slightly worse; optimized ones
    // must be inside.
    for app in ["PIP", "MWD", "VOPD", "DVOPD"] {
        let p = mesh_problem(app, Objective::MinimizeWorstCaseLoss);
        let r = run_dse(&p, &Rpbla, &DseConfig::new(5_000, 9));
        assert!(
            r.best_score > -3.5 && r.best_score < -1.0,
            "{app}: optimized loss {} outside the plausible band",
            r.best_score
        );
    }
}

#[test]
fn bigger_networks_lose_more() {
    // Paper: "both the crosstalk noise and the power loss scale up with
    // the network size: the worst-case values are reached in case of the
    // DVOPD application that is mapped on the bigger topology."
    let small = mesh_problem("PIP", Objective::MinimizeWorstCaseLoss);
    let large = mesh_problem("DVOPD", Objective::MinimizeWorstCaseLoss);
    let small_loss = run_dse(&small, &Rpbla, &DseConfig::new(4_000, 4)).best_score;
    let large_loss = run_dse(&large, &Rpbla, &DseConfig::new(4_000, 4)).best_score;
    assert!(
        large_loss < small_loss,
        "DVOPD ({large_loss}) must lose more than PIP ({small_loss})"
    );
}

#[test]
fn torus_improves_the_loss_of_large_apps() {
    // Wrap-around links halve the worst-case hop count of big meshes;
    // the paper's torus loss columns are consistently no worse than the
    // mesh ones for DVOPD.
    let cg = benchmarks::dvopd();
    let (w, h) = fit_grid(cg.task_count());
    let pitch = Length::from_mm(2.5);
    let mesh = MappingProblem::new(
        cg.clone(),
        Topology::mesh(w, h, pitch),
        crux_router(),
        Box::new(XyRouting),
        PhysicalParameters::default(),
        Objective::MinimizeWorstCaseLoss,
    )
    .unwrap();
    let torus = MappingProblem::new(
        cg,
        Topology::torus(w, h, pitch),
        crux_router(),
        Box::new(XyRouting),
        PhysicalParameters::default(),
        Objective::MinimizeWorstCaseLoss,
    )
    .unwrap();
    // Same random mapping on both: the torus routes cannot be longer.
    let mut rng = StdRng::seed_from_u64(31);
    let m = Mapping::random(32, w * h, &mut rng);
    let (mm, _) = mesh.evaluate(&m);
    let (tm, _) = torus.evaluate(&m);
    assert!(
        tm.worst_case_il.0 >= mm.worst_case_il.0 - 0.3,
        "torus {} much worse than mesh {}",
        tm.worst_case_il,
        mm.worst_case_il
    );
}

#[test]
fn rpbla_matches_or_beats_rs_on_every_benchmark() {
    // The paper's headline Table II ordering at equal budget.
    for app in ["PIP", "MWD", "VOPD", "MPEG-4"] {
        let p = mesh_problem(app, Objective::MaximizeWorstCaseSnr);
        let rs = run_dse(&p, &RandomSearch, &DseConfig::new(3_000, 55));
        let rp = run_dse(&p, &Rpbla, &DseConfig::new(3_000, 55));
        assert!(
            rp.best_score >= rs.best_score - 1e-9,
            "{app}: r-pbla {} < rs {}",
            rp.best_score,
            rs.best_score
        );
    }
}
