//! Shared experiment harness for regenerating the paper's tables and
//! figures (see EXPERIMENTS.md for the experiment index).
//!
//! Everything here is deterministic given a seed, and the heavy sweeps
//! are parallelized over [`phonoc_core::parallel`]'s persistent worker
//! pool — one coarse task per experiment cell — sharing read-only
//! problem state.

#![warn(missing_docs)]

pub mod parallel;
pub mod replay;
pub mod sweep;

use phonoc_core::{MappingProblem, Objective};
use phonoc_phys::{Length, PhysicalParameters};
use phonoc_route::XyRouting;
use phonoc_router::{RouterModel, RouterRegistry};
use phonoc_topo::{fit_grid, Topology, TopologyKind};

/// Default tile pitch used by every experiment (DESIGN.md §3).
#[must_use]
pub fn tile_pitch() -> Length {
    Length::from_mm(2.5)
}

/// The benchmark names in the order of the paper's Table II rows.
pub const TABLE2_APPS: [&str; 8] = [
    "263dec_mp3dec",
    "263enc_mp3enc",
    "DVOPD",
    "MPEG-4",
    "MWD",
    "PIP",
    "VOPD",
    "Wavelet",
];

/// Paper Table II reference values: `(app, [mesh RS, GA, R-PBLA], [torus
/// RS, GA, R-PBLA])` for SNR (dB), used by the harness output so each run
/// can be compared against the published numbers side by side.
pub const PAPER_TABLE2_SNR: [(&str, [f64; 3], [f64; 3]); 8] = [
    (
        "263dec_mp3dec",
        [20.21, 38.67, 38.67],
        [39.08, 38.71, 39.95],
    ),
    (
        "263enc_mp3enc",
        [38.29, 38.63, 38.63],
        [39.77, 39.73, 39.94],
    ),
    ("DVOPD", [12.65, 16.19, 18.70], [14.12, 19.15, 19.12]),
    ("MPEG-4", [19.06, 19.16, 20.02], [20.10, 20.10, 21.08]),
    ("MWD", [20.24, 38.63, 38.63], [39.72, 39.28, 39.95]),
    ("PIP", [38.58, 38.58, 38.58], [39.95, 39.88, 39.95]),
    ("VOPD", [18.66, 37.83, 38.67], [19.24, 20.29, 38.59]),
    ("Wavelet", [14.58, 37.95, 36.86], [16.29, 19.65, 32.52]),
];

/// Paper Table II reference values for worst-case loss (dB).
pub const PAPER_TABLE2_LOSS: [(&str, [f64; 3], [f64; 3]); 8] = [
    (
        "263dec_mp3dec",
        [-2.04, -1.52, -1.52],
        [-2.12, -1.68, -1.60],
    ),
    (
        "263enc_mp3enc",
        [-2.04, -1.94, -1.59],
        [-2.12, -1.97, -1.75],
    ),
    ("DVOPD", [-2.79, -2.15, -1.85], [-3.18, -2.23, -2.04]),
    ("MPEG-4", [-2.35, -2.04, -2.04], [-2.35, -2.20, -2.20]),
    ("MWD", [-1.81, -1.59, -1.59], [-1.97, -1.99, -1.61]),
    ("PIP", [-1.90, -1.68, -1.68], [-1.86, -1.70, -1.70]),
    ("VOPD", [-2.27, -1.96, -1.52], [-2.39, -2.04, -1.68]),
    ("Wavelet", [-2.46, -2.15, -1.93], [-3.06, -2.31, -2.27]),
];

/// Builds the topology hosting `tasks` tasks: the smallest near-square
/// grid, as a mesh or torus. Tori reject 2-wide dimensions, so the
/// harness widens those grids to 3 (only relevant for synthetic cases;
/// every paper benchmark already fits 3×3 or larger).
#[must_use]
pub fn topology_for(tasks: usize, kind: TopologyKind) -> Topology {
    let (mut w, mut h) = fit_grid(tasks);
    match kind {
        TopologyKind::Mesh => Topology::mesh(w, h, tile_pitch()),
        TopologyKind::Torus => {
            if w == 2 {
                w = 3;
            }
            if h == 2 {
                h = 3;
            }
            Topology::torus(w, h, tile_pitch())
        }
        TopologyKind::Ring => Topology::ring(tasks.max(3), tile_pitch()),
        TopologyKind::Custom => {
            panic!("custom topologies need an explicit Topology, not a kind")
        }
    }
}

/// Assembles the standard experiment problem: `app` on its fitted
/// mesh/torus of Crux routers, XY routing, Table I physics.
///
/// # Panics
///
/// Panics if `app` is not a known benchmark name — the experiment
/// binaries only iterate over [`TABLE2_APPS`].
#[must_use]
pub fn paper_problem(app: &str, kind: TopologyKind, objective: Objective) -> MappingProblem {
    problem_with_router(app, kind, objective, phonoc_router::crux::crux_router())
}

/// Same as [`paper_problem`] but with an explicit router model (for the
/// router ablation).
///
/// # Panics
///
/// Panics if `app` is unknown or the problem cannot be assembled (e.g.
/// router/routing incompatibility) — experiment configurations are
/// static, so failures are programming errors.
#[must_use]
pub fn problem_with_router(
    app: &str,
    kind: TopologyKind,
    objective: Objective,
    router: RouterModel,
) -> MappingProblem {
    let cg = phonoc_apps::benchmarks::benchmark(app)
        .unwrap_or_else(|| panic!("unknown benchmark `{app}`"));
    let topo = topology_for(cg.task_count(), kind);
    MappingProblem::new(
        cg,
        topo,
        router,
        Box::new(XyRouting),
        PhysicalParameters::default(),
        objective,
    )
    .expect("paper experiment configurations are valid")
}

/// Instantiates a router by registry name.
///
/// # Panics
///
/// Panics on unknown names; the ablation binary iterates over built-ins.
#[must_use]
pub fn router_by_name(name: &str) -> RouterModel {
    RouterRegistry::with_builtins()
        .get(name)
        .unwrap_or_else(|| panic!("unknown router `{name}`"))
}

/// A fixed-width histogram over `[lo, hi)` with saturation at both ends.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` buckets spanning
    /// `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0 && hi > lo, "invalid histogram shape");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            count: 0,
        }
    }

    /// Records one sample (clamped to the outer buckets).
    pub fn add(&mut self, value: f64) {
        let n = self.bins.len();
        let t = (value - self.lo) / (self.hi - self.lo);
        let idx = ((t * n as f64).floor() as i64).clamp(0, n as i64 - 1) as usize;
        self.bins[idx] += 1;
        self.count += 1;
    }

    /// Merges another histogram with the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len());
        assert!((self.lo - other.lo).abs() < 1e-12);
        assert!((self.hi - other.hi).abs() < 1e-12);
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Total number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The bucket counts.
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Midpoint of bucket `i`.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// CSV rendering: `center,probability` per line.
    #[must_use]
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("bin_center,probability\n");
        for (i, &c) in self.bins.iter().enumerate() {
            let p = if self.count == 0 {
                0.0
            } else {
                c as f64 / self.count as f64
            };
            let _ = writeln!(out, "{:.4},{:.6}", self.bin_center(i), p);
        }
        out
    }

    /// Compact ASCII rendering (one row per bucket) for terminal output.
    #[must_use]
    pub fn to_ascii(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let max = self.bins.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let bar = (c as f64 / max as f64 * width as f64).round() as usize;
            let _ = writeln!(
                out,
                "{:>8.2} | {:<width$} {:.4}",
                self.bin_center(i),
                "#".repeat(bar),
                if self.count == 0 {
                    0.0
                } else {
                    c as f64 / self.count as f64
                },
            );
        }
        out
    }
}

/// Parses `--flag value` style options from `std::env::args`, returning
/// the value for `flag` if present and parseable.
#[must_use]
pub fn arg_value<T: std::str::FromStr>(flag: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Writes `content` to `results/<name>` under the current directory,
/// creating it if needed; prints the destination. Errors are reported
/// but not fatal (experiments still print to stdout).
pub fn write_results_file(name: &str, content: &str) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, content) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.5);
        h.add(9.99);
        h.add(-5.0); // clamps into bin 0
        h.add(50.0); // clamps into bin 9
        assert_eq!(h.count(), 4);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[9], 2);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let mut b = Histogram::new(0.0, 1.0, 4);
        a.add(0.1);
        b.add(0.9);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.bins()[0], 1);
        assert_eq!(a.bins()[3], 1);
    }

    #[test]
    fn csv_and_ascii_render() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.add(0.5);
        let csv = h.to_csv();
        assert!(csv.starts_with("bin_center,probability"));
        assert!(csv.contains("0.5000,1.000000"));
        let ascii = h.to_ascii(10);
        assert!(ascii.contains('#'));
    }

    #[test]
    fn every_table2_cell_assembles() {
        for app in TABLE2_APPS {
            for kind in [TopologyKind::Mesh, TopologyKind::Torus] {
                let p = paper_problem(app, kind, Objective::MaximizeWorstCaseSnr);
                assert!(p.task_count() <= p.tile_count(), "{app} on {kind}");
            }
        }
    }

    #[test]
    fn reference_tables_cover_all_apps() {
        assert_eq!(PAPER_TABLE2_SNR.len(), 8);
        assert_eq!(PAPER_TABLE2_LOSS.len(), 8);
        for (name, _, _) in PAPER_TABLE2_SNR {
            assert!(TABLE2_APPS.contains(&name));
        }
    }
}
