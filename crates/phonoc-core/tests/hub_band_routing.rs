//! Executable bound for the documented hub-band routing noise.
//!
//! ROADMAP (PR 3): in the 6×6–8×8 hub band — occupancy concentration
//! 1.5–2.2, the star/hotspot/MPEG-like shapes — the full-vs-bounded
//! winner flips between seeds with ~10–15% margins, so the static
//! [`PeekCostModel`] picks the average-best side and an occasional
//! single-seed cell may sit slightly above the sweep's 10% acceptance
//! bound. This test turns that prose into an executable bound: over
//! every hub-band cell (both seeds), the hybrid's improving-scan cost
//! must never exceed **1.5×** the per-cell best single strategy — the
//! same generous factor `scripts/bench_gate.py` applies — and the
//! router's full-vs-bounded choices themselves must be deterministic.

use phonoc_apps::scenario::{ScenarioFamily, ScenarioSpec};
use phonoc_core::{
    DeltaScratch, EvalScratch, Mapping, MappingProblem, Move, Objective, PeekCostModel,
};
use phonoc_phys::{Length, PhysicalParameters};
use phonoc_route::XyRouting;
use phonoc_router::crux::crux_router;
use phonoc_topo::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

const HUB_BAND: std::ops::RangeInclusive<f64> = 1.5..=2.2;
const MOVES: usize = 48;
const SAMPLES: usize = 5;
/// The bench gate's generous advisory factor: hub-band seed flips are
/// 10–15%, so 1.5× leaves real headroom while still catching a router
/// that picks the wrong side outright (the band's full/bounded gap is
/// well above 2× when the model misroutes systematically). Unlike raw
/// timings, the asserted *ratio* is scale-invariant — a uniformly
/// throttled runner slows all three interleaved strategies alike — so
/// only noise that asymmetrically poisons one strategy across all
/// `SAMPLES × (1 + RETRY_ROUNDS)` ≥2 ms min-merged samples could flake
/// it, which is the same robustness argument the sweep harness makes.
const BOUND: f64 = 1.5;
/// Extra measurement rounds (min-merged) before a cell may fail: on a
/// shared box a background burst can poison one strategy's samples.
const RETRY_ROUNDS: usize = 4;

struct Cell {
    spec: ScenarioSpec,
    problem: MappingProblem,
    mapping: Mapping,
    model: PeekCostModel,
    moves: Vec<Move>,
}

/// Every 6×6/8×8 cell of the hub-concentrated families (both seeds)
/// whose random-placement concentration falls in the documented band.
fn hub_band_cells() -> Vec<Cell> {
    let mut cells = Vec::new();
    for family in [
        ScenarioFamily::Star,
        ScenarioFamily::Hotspot,
        ScenarioFamily::MpegLike,
    ] {
        for mesh in [6usize, 8] {
            for seed in [1u64, 2] {
                let spec = ScenarioSpec {
                    family,
                    mesh,
                    density_pct: 100,
                    seed,
                };
                let problem = MappingProblem::new(
                    spec.build(),
                    Topology::mesh(mesh, mesh, Length::from_mm(2.5)),
                    crux_router(),
                    Box::new(XyRouting),
                    PhysicalParameters::default(),
                    Objective::MaximizeWorstCaseSnr,
                )
                .expect("scenario problems are valid");
                // The sweep harness's workload: a seeded random
                // placement plus a fixed seeded swap cycle.
                let mut rng =
                    StdRng::seed_from_u64(seed.wrapping_mul(0xC0FF_EE00).wrapping_add(13));
                let mapping = Mapping::random(problem.task_count(), problem.tile_count(), &mut rng);
                let state = problem.evaluator().init_state(&mapping);
                let model = PeekCostModel::of(&state);
                let moves: Vec<Move> = (0..MOVES)
                    .map(|_| mapping.random_swap_move(&mut rng))
                    .collect();
                if HUB_BAND.contains(&model.concentration()) {
                    cells.push(Cell {
                        spec,
                        problem,
                        mapping,
                        model,
                        moves,
                    });
                }
            }
        }
    }
    cells
}

#[test]
fn hub_band_route_choices_are_deterministic() {
    let cells = hub_band_cells();
    assert!(
        cells.len() >= 4,
        "the documented hub band should cover several 6x6-8x8 cells, found {}",
        cells.len()
    );
    for cell in &cells {
        let evaluator = cell.problem.evaluator();
        let record = || -> Vec<bool> {
            cell.moves
                .iter()
                .map(|&mv| {
                    cell.model
                        .routes_full(evaluator.moved_edge_count(&cell.mapping, mv), true)
                })
                .collect()
        };
        let first = record();
        assert_eq!(
            first,
            record(),
            "{}: routing must be a pure function",
            cell.spec.id()
        );
        let full_share = first.iter().filter(|&&f| f).count() as f64 / first.len() as f64;
        println!(
            "{}: concentration {:.3}, improving-scan full share {:.2}",
            cell.spec.id(),
            cell.model.concentration(),
            full_share
        );
    }
}

/// Minimum wall-clock one timed sample should span (the sweep
/// harness's discipline): samples far below the scheduler quantum
/// measure mostly timer noise, which is exactly what would flake this
/// bound on a loaded runner.
const TARGET_SAMPLE_NS: u128 = 2_000_000;

/// Times one pass of the cycle under `which` (0 = full, 1 = bounded,
/// 2 = hybrid improving), repeated `reps` times, returning total ns
/// for a single pass (averaged over the repetitions).
fn time_pass(
    cell: &Cell,
    which: usize,
    reps: usize,
    fs: &mut EvalScratch,
    ds: &mut DeltaScratch,
) -> u64 {
    let evaluator = cell.problem.evaluator();
    let state = evaluator.init_state(&cell.mapping);
    let threshold = state.worst_case_snr();
    let t = Instant::now();
    for _ in 0..reps.max(1) {
        one_pass(cell, which, &state, threshold, fs, ds);
    }
    (t.elapsed().as_nanos() / reps.max(1) as u128) as u64
}

fn one_pass(
    cell: &Cell,
    which: usize,
    state: &phonoc_core::EvalState,
    threshold: phonoc_phys::Db,
    fs: &mut EvalScratch,
    ds: &mut DeltaScratch,
) {
    let evaluator = cell.problem.evaluator();
    for &mv in &cell.moves {
        match which {
            0 => {
                let moved = cell.mapping.with_move(mv);
                black_box(evaluator.evaluate_into(&moved, None, fs));
            }
            1 => {
                black_box(evaluator.evaluate_delta_bounded(
                    state,
                    &cell.mapping,
                    mv,
                    ds,
                    threshold,
                ));
            }
            _ => {
                if cell
                    .model
                    .routes_full(evaluator.moved_edge_count(&cell.mapping, mv), true)
                {
                    let moved = cell.mapping.with_move(mv);
                    black_box(evaluator.evaluate_into(&moved, None, fs));
                } else {
                    black_box(evaluator.evaluate_delta_bounded(
                        state,
                        &cell.mapping,
                        mv,
                        ds,
                        threshold,
                    ));
                }
            }
        }
    }
}

/// Fastest-of-N interleaved observation per strategy, with the sweep
/// harness's discipline in miniature: a settle pause before the clock
/// starts, per-strategy repetition counts calibrated so every timed
/// sample spans at least [`TARGET_SAMPLE_NS`] (a fast strategy's sample
/// must not be a sub-quantum timer-noise reading), and the minimum kept
/// (identical deterministic work per pass, so the min is the
/// least-disturbed observation).
fn measure(cell: &Cell, fs: &mut EvalScratch, ds: &mut DeltaScratch) -> [u64; 3] {
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut reps = [1usize; 3];
    for (which, slot) in reps.iter_mut().enumerate() {
        let single = u128::from(time_pass(cell, which, 1, fs, ds)).max(1); // warm-up + calibration
        *slot = ((TARGET_SAMPLE_NS / single).max(1) as usize).min(256);
    }
    let mut best = [u64::MAX; 3];
    for _ in 0..SAMPLES {
        for (which, slot) in best.iter_mut().enumerate() {
            *slot = (*slot).min(time_pass(cell, which, reps[which], fs, ds));
        }
    }
    best
}

#[test]
fn hybrid_stays_within_the_generous_bound_across_hub_band_seeds() {
    let cells = hub_band_cells();
    let mut fs = EvalScratch::default();
    let mut ds = DeltaScratch::default();
    for cell in &cells {
        let mut obs = measure(cell, &mut fs, &mut ds);
        let ratio = |o: &[u64; 3]| o[2] as f64 / o[0].min(o[1]).max(1) as f64;
        // Min-merge retries: identical deterministic work per pass, so
        // the minimum across rounds is just a better sample.
        for _ in 0..RETRY_ROUNDS {
            if ratio(&obs) <= BOUND {
                break;
            }
            let fresh = measure(cell, &mut fs, &mut ds);
            for (slot, f) in obs.iter_mut().zip(fresh) {
                *slot = (*slot).min(f);
            }
        }
        let [full, bounded, hybrid] = obs;
        println!(
            "{}: full {} ns, bounded {} ns, hybrid {} ns ({:.3}x best)",
            cell.spec.id(),
            full,
            bounded,
            hybrid,
            ratio(&obs)
        );
        assert!(
            ratio(&obs) <= BOUND,
            "{}: hybrid {} ns exceeds {BOUND}x the per-cell best (full {} ns, bounded {} ns)",
            cell.spec.id(),
            hybrid,
            full,
            bounded
        );
    }
}
