//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use —
//! [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`] — on a simple wall-clock harness: a calibration
//! pass sizes the iteration count to a target measurement time, then
//! several samples are timed and min/median/mean ns/iter are printed.
//!
//! Compatible with cargo's conventions: a name filter may be passed as
//! the first free CLI argument (`cargo bench -- <filter>` or
//! `cargo bench <filter>`), and when invoked with `--test` (as
//! `cargo test --benches` does) every routine runs exactly once as a
//! smoke test without timing.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub use std::hint::black_box;

/// How batched inputs are grouped; accepted for API compatibility, the
/// harness always materializes one input per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Times a routine under the harness.
pub struct Bencher {
    mode: Mode,
    /// Nanoseconds per iteration for each measured sample.
    samples: Vec<f64>,
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Full measurement.
    Measure { sample_count: usize },
    /// `--test`: run the routine once, no timing.
    Smoke,
}

impl Bencher {
    /// Times `routine` (called back-to-back in calibrated batches).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Smoke => {
                black_box(routine());
            }
            Mode::Measure { sample_count } => {
                let iters = calibrate(|n| {
                    let start = Instant::now();
                    for _ in 0..n {
                        black_box(routine());
                    }
                    start.elapsed()
                });
                self.samples = (0..sample_count)
                    .map(|_| {
                        let start = Instant::now();
                        for _ in 0..iters {
                            black_box(routine());
                        }
                        start.elapsed().as_secs_f64() * 1e9 / iters as f64
                    })
                    .collect();
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Smoke => {
                black_box(routine(setup()));
            }
            Mode::Measure { sample_count } => {
                let iters = calibrate(|n| {
                    let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
                    let start = Instant::now();
                    for input in inputs {
                        black_box(routine(input));
                    }
                    start.elapsed()
                });
                self.samples = (0..sample_count)
                    .map(|_| {
                        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
                        let start = Instant::now();
                        for input in inputs {
                            black_box(routine(input));
                        }
                        start.elapsed().as_secs_f64() * 1e9 / iters as f64
                    })
                    .collect();
            }
        }
    }
}

/// Finds an iteration count whose batch takes roughly the target time.
fn calibrate(mut run: impl FnMut(u64) -> Duration) -> u64 {
    const TARGET: Duration = Duration::from_millis(60);
    let mut iters = 1u64;
    loop {
        let t = run(iters);
        if t >= TARGET || iters >= 1 << 24 {
            return iters.max(1);
        }
        // Scale toward the target, at most 10× per step.
        let scale = (TARGET.as_secs_f64() / t.as_secs_f64().max(1e-9)).clamp(2.0, 10.0);
        iters = ((iters as f64 * scale) as u64).max(iters + 1);
    }
}

/// Top-level harness state: name filter + run mode.
pub struct Criterion {
    filter: Option<String>,
    smoke: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut smoke = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke = true,
                "--bench" | "--nocapture" | "--quiet" | "-q" | "--verbose" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_owned()),
            }
        }
        Criterion {
            filter,
            smoke,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: None,
        }
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, routine: R) -> &mut Self {
        let n = self.sample_size;
        self.run_one(id, routine, n);
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }

    fn run_one<R: FnMut(&mut Bencher)>(&mut self, full_name: &str, mut routine: R, samples: usize) {
        if !self.matches(full_name) {
            return;
        }
        let mut b = Bencher {
            mode: if self.smoke {
                Mode::Smoke
            } else {
                Mode::Measure {
                    sample_count: samples,
                }
            },
            samples: Vec::new(),
        };
        routine(&mut b);
        if self.smoke {
            println!("bench {full_name}: ok (smoke)");
            return;
        }
        if b.samples.is_empty() {
            println!("bench {full_name}: no measurement recorded");
            return;
        }
        let mut sorted = b.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "bench {full_name}: min {} · median {} · mean {}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Benchmarks `routine` as `<group>/<id>`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, routine: R) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, routine, samples);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            filter: None,
            smoke: true,
            sample_size: 10,
        };
        let mut calls = 0usize;
        c.bench_function("t", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_mismatches() {
        let mut c = Criterion {
            filter: Some("needle".into()),
            smoke: true,
            sample_size: 10,
        };
        let mut calls = 0usize;
        c.bench_function("haystack", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(calls, 0);
        let mut g = c.benchmark_group("has");
        g.bench_function("needle_here", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        assert_eq!(calls, 1);
    }
}
