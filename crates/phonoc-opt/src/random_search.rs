//! Random search (paper Section II-D2): "generates randomly a population
//! of a given size and then picks the best individual".
//!
//! With the engine's budget semantics this is simply: draw uniformly
//! random valid mappings until the evaluation budget runs out; the
//! incumbent tracking in [`OptContext`] keeps the best. Draws are scored
//! in chunks through [`OptContext::evaluate_batch`], which fans the
//! independent evaluations across CPU cores; chunks are drawn
//! sequentially from the seeded RNG, so the stream — and therefore the
//! result — is identical to the one-at-a-time loop.
//!
//! RS is **deliberately policy-free and start-free**: it proposes whole
//! uniform mappings rather than moves, so there is no swap
//! neighbourhood a
//! [`NeighborhoodPolicy`](phonoc_core::NeighborhoodPolicy) could
//! restrict, and seeding it with an elite incumbent (the portfolio
//! exchange hook other strategies honour through
//! [`OptContext::initial_mapping`]) would only distort the uniform
//! baseline it exists to provide. A portfolio lane running `rs` still
//! contributes — its samples feed the shared incumbent — it just never
//! *consumes* an exchanged elite.

use phonoc_core::{Mapping, MappingOptimizer, OptContext};

/// Mappings drawn per parallel scoring chunk.
const CHUNK: usize = 64;

/// The paper's RS baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomSearch;

impl MappingOptimizer for RandomSearch {
    fn name(&self) -> &'static str {
        "rs"
    }

    fn optimize(&self, ctx: &mut OptContext<'_>) {
        while !ctx.exhausted() {
            let n = ctx.remaining().min(CHUNK);
            let batch: Vec<Mapping> = (0..n).map(|_| ctx.random_mapping()).collect();
            if ctx.evaluate_batch(&batch).len() < batch.len() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_problem;
    use phonoc_core::{run_dse, DseConfig};

    #[test]
    fn uses_whole_budget() {
        let p = tiny_problem();
        let r = run_dse(&p, &RandomSearch, &DseConfig::new(123, 7));
        assert_eq!(r.evaluations, 123);
        assert!(r.best_mapping.is_valid());
    }

    #[test]
    fn more_budget_never_hurts() {
        let p = tiny_problem();
        let small = run_dse(&p, &RandomSearch, &DseConfig::new(20, 5));
        let large = run_dse(&p, &RandomSearch, &DseConfig::new(400, 5));
        assert!(
            large.best_score >= small.best_score,
            "a prefix-extended search cannot be worse under the same seed"
        );
    }
}
