//! Deterministic fork–join parallelism for batch evaluation.
//!
//! The environment this workspace builds in has no registry access, so
//! instead of `rayon` this module provides the two primitives the
//! engine needs — order-preserving parallel maps over a slice — built
//! on [`std::thread::scope`]. Results are returned in input order
//! regardless of scheduling, so every caller stays deterministic.
//!
//! * [`parallel_map`] / [`parallel_map_with`] — the fine-grained map
//!   behind batch evaluation. Tiny batches are not worth a fork: a
//!   per-thread chunk floor (`MIN_CHUNK`) keeps short admitted-list
//!   scans and small populations on the caller thread and scales the
//!   worker count with the batch size, so multi-core machines stop
//!   paying thread-spawn overhead for work that finishes faster than a
//!   spawn.
//! * [`parallel_map_tasks`] — the coarse-grained map behind portfolio
//!   lanes: items are whole optimizer runs (milliseconds to seconds
//!   each), so it forks for *any* batch of two or more items instead of
//!   applying the chunk floor.
//!
//! # Worker-count control and invariance
//!
//! The worker count is normally the machine's available parallelism,
//! but can be pinned — `PHONOC_WORKERS=N` in the environment (read
//! once), or [`set_worker_override`] at run time (tests; the runtime
//! setting wins). **Results never depend on the worker count**: both
//! maps concatenate per-chunk results in input order, so a 1-worker and
//! an 8-worker run of the same batch are bit-identical as long as the
//! mapped function is a pure function of its item (per-worker scratches
//! from `parallel_map_with`'s `init` must be buffers, not accumulators)
//! — property-tested in `tests/thread_invariance.rs`. If `rayon` is
//! ever vendored, only this module needs to change.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Minimum items handed to each worker thread. Spawning a thread costs
/// tens of microseconds; the items flowing through here (full or delta
/// evaluations) cost single-digit microseconds each, so a batch must
/// amortize the spawn over at least this many items per worker before
/// forking pays. Below `2 × MIN_CHUNK` items, batches run on the caller
/// thread; above it, worker count scales with `n / MIN_CHUNK` up to the
/// machine's parallelism.
pub(crate) const MIN_CHUNK: usize = 16;

/// Runtime worker-count override; `0` means "not set". Takes
/// precedence over the `PHONOC_WORKERS` environment variable.
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins (Some, clamped to ≥ 1) or releases (None) the worker count
/// used by every parallel map in this process. The thread-invariance
/// property tests drive this; production runs use the
/// `PHONOC_WORKERS` environment variable instead. Changing the worker
/// count never changes any map's results (see the [module
/// docs](self)), only how the work is scheduled.
pub fn set_worker_override(workers: Option<usize>) {
    WORKER_OVERRIDE.store(workers.map_or(0, |w| w.max(1)), Ordering::Relaxed);
}

/// The `PHONOC_WORKERS` environment setting, parsed once: the CI
/// worker matrix pins worker counts process-wide through it.
fn env_workers() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PHONOC_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|w| w.max(1))
    })
}

/// The effective worker ceiling: runtime override, then
/// `PHONOC_WORKERS`, then the machine's available parallelism.
pub(crate) fn max_workers() -> usize {
    match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => env_workers().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        }),
        pinned => pinned,
    }
}

/// Number of worker threads to use for `n` fine-grained items: the
/// effective worker ceiling, capped so every worker gets at least
/// [`MIN_CHUNK`] items.
fn workers_for(n: usize) -> usize {
    max_workers().min(n / MIN_CHUNK).max(1)
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// Falls back to a sequential loop when the batch is too small to be
/// worth forking (fewer than 2 items or a single-core machine).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, || (), move |_: &mut (), item| f(item))
}

/// Like [`parallel_map`], but hands each worker thread a private
/// scratch value built by `init` (e.g. reusable evaluation buffers).
pub fn parallel_map_with<S, T, R, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    map_chunked(items, workers_for(items.len()), init, f)
}

/// Like [`parallel_map`], but for **coarse-grained** items (whole
/// optimizer runs — the portfolio's bulk-synchronous lane rounds):
/// forks for any batch of two or more items instead of applying the
/// `MIN_CHUNK` floor, since each item is many orders of magnitude
/// heavier than a thread spawn. Results are returned in input order, so
/// the reduction over them is fixed regardless of the worker count.
pub fn parallel_map_tasks<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = max_workers().min(items.len()).max(1);
    map_chunked(items, workers, || (), move |_: &mut (), item| f(item))
}

/// The shared chunked runner: splits `items` into one contiguous chunk
/// per worker and concatenates per-chunk results in input order.
fn map_chunked<S, T, R, I, F>(items: &[T], workers: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    if workers <= 1 || items.len() < 2 {
        let mut scratch = init();
        return items.iter().map(|item| f(&mut scratch, item)).collect();
    }

    // Contiguous chunks, one per worker; each worker returns its chunk's
    // results which are concatenated back in order.
    let chunk = items.len().div_ceil(workers);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(|| {
                    let mut scratch = init();
                    slice
                        .iter()
                        .map(|item| f(&mut scratch, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("batch evaluation worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * 3);
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn tiny_batches_work() {
        assert_eq!(parallel_map(&[] as &[usize], |&x| x), Vec::<usize>::new());
        assert_eq!(parallel_map(&[7usize], |&x| x + 1), vec![8]);
    }

    #[test]
    fn chunk_floor_results_are_input_ordered_and_identical() {
        // Sizes straddling every boundary of the chunk floor: empty,
        // sub-floor (sequential), exactly one floor, just above, several
        // floors, and far beyond any plausible core count × floor. The
        // result must always equal the sequential map, in input order.
        for n in [
            0,
            1,
            MIN_CHUNK - 1,
            MIN_CHUNK,
            MIN_CHUNK + 1,
            3 * MIN_CHUNK,
            1024,
        ] {
            let items: Vec<usize> = (0..n).collect();
            let expected: Vec<usize> = items.iter().map(|&x| x * 7 + 1).collect();
            let out = parallel_map(&items, |&x| x * 7 + 1);
            assert_eq!(out, expected, "n = {n}");
        }
    }

    #[test]
    fn tiny_batches_never_fork() {
        // Below the floor, the map must run on the caller thread — the
        // scratch from `init` is then shared across *all* items, so the
        // counter reaches exactly n.
        let n = MIN_CHUNK * 2 - 1;
        let items: Vec<usize> = (0..n).collect();
        let out = parallel_map_with(
            &items,
            || 0usize,
            |count, &x| {
                *count += 1;
                (x, *count)
            },
        );
        assert_eq!(out.last().copied(), Some((n - 1, n)));
    }

    #[test]
    fn tasks_map_is_input_ordered_at_every_worker_count() {
        // The override is process-global; serialize with the other
        // override test and always restore the default.
        let _guard = override_lock().lock().unwrap();
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * 11 + 5).collect();
        for workers in [1, 2, 3, 4, 64] {
            set_worker_override(Some(workers));
            let out = parallel_map_tasks(&items, |&x| x * 11 + 5);
            assert_eq!(out, expected, "workers = {workers}");
        }
        set_worker_override(None);
    }

    #[test]
    fn tasks_map_forks_small_batches() {
        let _guard = override_lock().lock().unwrap();
        set_worker_override(Some(2));
        // Two heavyweight items must land on two distinct threads (the
        // fine-grained map would keep them on the caller thread).
        let ids = parallel_map_tasks(&[0, 1], |_| std::thread::current().id());
        assert_ne!(ids[0], ids[1], "coarse map must fork below MIN_CHUNK");
        set_worker_override(None);
        // Single items never fork.
        let one = parallel_map_tasks(&[42usize], |&x| x);
        assert_eq!(one, vec![42]);
    }

    fn override_lock() -> &'static std::sync::Mutex<()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        &LOCK
    }

    #[test]
    fn scratch_is_per_worker() {
        let items: Vec<usize> = (0..64).collect();
        // The scratch counter only ever increments within one worker, so
        // every result is the 1-based index within its chunk — never 0.
        let out = parallel_map_with(
            &items,
            || 0usize,
            |count, &x| {
                *count += 1;
                (x, *count)
            },
        );
        assert_eq!(out.len(), 64);
        for (i, &(x, c)) in out.iter().enumerate() {
            assert_eq!(x, i);
            assert!(c >= 1);
        }
    }
}
