//! Bit-error-rate estimation from SNR (extension).
//!
//! The paper's companion work (Xie et al., DAC 2010 — the paper's
//! reference \[12\]) analyzes bit error rate alongside crosstalk. We provide
//! the standard on-off-keying estimate so the mapping tool can report BER
//! for any evaluated mapping:
//!
//! * Q-factor from optical SNR: `Q = sqrt(SNR_linear)` (signal-independent
//!   noise assumption),
//! * `BER = ½·erfc(Q / √2)`.
//!
//! `erfc` is computed with the Abramowitz & Stegun 7.1.26 rational
//! approximation (absolute error ≤ 1.5·10⁻⁷), which is more than accurate
//! enough for the 10⁻⁹…10⁻¹² BER regimes of interest.
//!
//! # Examples
//!
//! ```
//! use phonoc_phys::ber::ber_from_snr;
//! use phonoc_phys::units::Db;
//!
//! // The classic rule of thumb: Q ≈ 6 (SNR ≈ 15.6 dB) gives BER ≈ 1e-9.
//! let ber = ber_from_snr(Db(15.563));
//! assert!(ber < 1.1e-9 && ber > 0.9e-10);
//! ```

use crate::units::Db;

/// Complementary error function, `erfc(x) = 1 - erf(x)`.
///
/// Uses the Abramowitz & Stegun 7.1.26 polynomial approximation with the
/// odd-symmetry identity `erf(-x) = -erf(x)` for negative arguments.
/// Absolute error is below `1.5e-7` over the whole real line.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Error function via Abramowitz & Stegun 7.1.26.
#[must_use]
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    const P: f64 = 0.327_591_1;
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    let t = 1.0 / (1.0 + P * x);
    let poly = t * (A1 + t * (A2 + t * (A3 + t * (A4 + t * A5))));
    1.0 - poly * (-x * x).exp()
}

/// Q-factor corresponding to an optical signal-to-noise ratio.
///
/// Under the signal-independent-noise assumption used in the chip-scale
/// photonics literature, `Q = sqrt(SNR_linear)`.
#[must_use]
pub fn q_factor(snr: Db) -> f64 {
    snr.to_linear().0.sqrt()
}

/// On-off-keying bit error rate for a given optical SNR:
/// `BER = ½·erfc(Q/√2)` with `Q = sqrt(SNR_linear)`.
///
/// Returns `0.5` for an SNR of `-inf` (pure noise) and approaches `0` as
/// SNR grows; values below ≈1e-17 underflow to `0`, which is fine for
/// reporting purposes.
#[must_use]
pub fn ber_from_snr(snr: Db) -> f64 {
    let q = q_factor(snr);
    0.5 * erfc(q / std::f64::consts::SQRT_2)
}

/// The minimum SNR (dB) needed to reach a target bit error rate, found by
/// bisection on [`ber_from_snr`].
///
/// # Panics
///
/// Panics if `target_ber` is not within `(0, 0.5)`.
#[must_use]
pub fn required_snr_for_ber(target_ber: f64) -> Db {
    assert!(
        target_ber > 0.0 && target_ber < 0.5,
        "target BER must be in (0, 0.5), got {target_ber}"
    );
    let (mut lo, mut hi) = (Db(-10.0), Db(30.0));
    for _ in 0..200 {
        let mid = Db((lo.0 + hi.0) / 2.0);
        if ber_from_snr(mid) > target_ber {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from tables of erf; the A&S 7.1.26
        // approximation is accurate to 1.5e-7.
        assert!((erf(0.0)).abs() < 1.5e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-2.0, -0.5, 0.0, 0.3, 1.7, 3.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn q_factor_examples() {
        assert!((q_factor(Db(0.0)) - 1.0).abs() < 1e-12);
        assert!((q_factor(Db(20.0)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ber_monotonically_improves_with_snr() {
        // Strict decrease holds until the approximation underflows to 0
        // (around 19 dB of SNR, i.e. BER ~1e-19).
        let mut prev = 1.0;
        for snr_db in 0..=18 {
            let ber = ber_from_snr(Db(f64::from(snr_db)));
            assert!(ber < prev, "BER must decrease with SNR at {snr_db} dB");
            prev = ber;
        }
    }

    #[test]
    fn ber_at_zero_snr_is_large() {
        // Q = 1 → BER = ½·erfc(1/√2) ≈ 0.1587.
        let ber = ber_from_snr(Db(0.0));
        assert!((ber - 0.1587).abs() < 1e-3);
    }

    #[test]
    fn required_snr_inverts_ber() {
        for target in [1e-3, 1e-6, 1e-9] {
            let snr = required_snr_for_ber(target);
            let achieved = ber_from_snr(snr);
            assert!(
                achieved <= target * 1.05,
                "snr {snr} gives {achieved} > {target}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "target BER")]
    fn required_snr_rejects_silly_targets() {
        let _ = required_snr_for_ber(0.9);
    }
}
