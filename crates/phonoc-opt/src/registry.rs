//! Name-based optimizer registry — the "Mapping Optimization" extension
//! point of the paper's Fig. 1.
//!
//! Registry names optionally carry a neighbourhood suffix,
//! `name@policy` (e.g. `r-pbla@sampled`), which [`optimizer_spec`]
//! resolves into the optimizer plus the
//! [`NeighborhoodPolicy`] the run should pin — the form the sweep
//! harness and the CLI thread user-selected policies through.

use crate::annealing::SimulatedAnnealing;
use crate::exhaustive::Exhaustive;
use crate::genetic::GeneticAlgorithm;
use crate::ils::IteratedLocalSearch;
use crate::random_search::RandomSearch;
use crate::rpbla::Rpbla;
use crate::tabu::TabuSearch;
use phonoc_core::{MappingOptimizer, NeighborhoodPolicy};

/// Instantiates a built-in optimizer by name: `"rs"`, `"ga"`,
/// `"r-pbla"` (or `"rpbla"`), `"sa"`, `"tabu"`, `"exhaustive"`.
#[must_use]
pub fn optimizer(name: &str) -> Option<Box<dyn MappingOptimizer>> {
    match name.to_lowercase().as_str() {
        "rs" | "random" => Some(Box::new(RandomSearch)),
        "ga" | "genetic" => Some(Box::new(GeneticAlgorithm::default())),
        "r-pbla" | "rpbla" => Some(Box::new(Rpbla)),
        "sa" | "annealing" => Some(Box::new(SimulatedAnnealing::default())),
        "ils" => Some(Box::new(IteratedLocalSearch::default())),
        "tabu" => Some(Box::new(TabuSearch::default())),
        "exhaustive" => Some(Box::new(Exhaustive)),
        _ => None,
    }
}

/// Parses an optimizer spec of the form `name[@neighborhood]` — e.g.
/// `r-pbla@sampled` or plain `tabu` — into the optimizer and the
/// [`NeighborhoodPolicy`] the run should pin (`None` means "leave the
/// context default", i.e. [`NeighborhoodPolicy::Auto`]). Returns `None`
/// for an unknown optimizer name *or* an unknown policy suffix.
#[must_use]
pub fn optimizer_spec(
    spec: &str,
) -> Option<(Box<dyn MappingOptimizer>, Option<NeighborhoodPolicy>)> {
    match spec.split_once('@') {
        Some((name, policy)) => {
            Some((optimizer(name)?, Some(NeighborhoodPolicy::by_name(policy)?)))
        }
        None => Some((optimizer(spec)?, None)),
    }
}

/// Names of all built-in optimizers.
#[must_use]
pub fn builtin_names() -> &'static [&'static str] {
    &["rs", "ga", "r-pbla", "sa", "tabu", "ils", "exhaustive"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_resolves() {
        for name in builtin_names() {
            let opt = optimizer(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(!opt.name().is_empty());
        }
    }

    #[test]
    fn aliases_and_case_insensitivity() {
        assert!(optimizer("RPBLA").is_some());
        assert!(optimizer("Genetic").is_some());
        assert!(optimizer("nonsense").is_none());
    }

    #[test]
    fn specs_carry_neighborhood_policies() {
        let (opt, policy) = optimizer_spec("r-pbla@sampled").unwrap();
        assert_eq!(opt.name(), "r-pbla");
        assert_eq!(policy, Some(NeighborhoodPolicy::Sampled));
        let (_, policy) = optimizer_spec("tabu@Locality").unwrap();
        assert_eq!(policy, Some(NeighborhoodPolicy::Locality));
        let (_, policy) = optimizer_spec("rs").unwrap();
        assert_eq!(policy, None);
        assert!(optimizer_spec("r-pbla@nonsense").is_none());
        assert!(optimizer_spec("nonsense@sampled").is_none());
    }
}
