//! Name-based optimizer registry — the "Mapping Optimization" extension
//! point of the paper's Fig. 1.
//!
//! Registry names optionally carry a neighbourhood suffix,
//! `name@policy` (e.g. `r-pbla@sampled`), which [`optimizer_spec`]
//! resolves into the optimizer plus the
//! [`NeighborhoodPolicy`] the run should pin — the form the sweep
//! harness and the CLI thread user-selected policies through.
//!
//! Beyond single optimizers, a `portfolio:` prefix names a multi-lane
//! portfolio run (e.g.
//! `portfolio:r-pbla@sampled+r-pbla@locality+sa,exchange=best,rounds=8`
//! — see [`PortfolioSpec`]); [`search_spec`] resolves either form into
//! a [`SearchSpec`], the single entry point the sweep harness and the
//! CLI dispatch on.

use crate::annealing::SimulatedAnnealing;
use crate::exhaustive::Exhaustive;
use crate::genetic::GeneticAlgorithm;
use crate::ils::IteratedLocalSearch;
use crate::portfolio::PortfolioSpec;
use crate::random_search::RandomSearch;
use crate::rpbla::Rpbla;
use crate::tabu::TabuSearch;
use phonoc_core::{MappingOptimizer, NeighborhoodPolicy};

/// Instantiates a built-in optimizer by name: `"rs"`, `"ga"`,
/// `"r-pbla"` (or `"rpbla"`), `"sa"`, `"tabu"`, `"exhaustive"`.
#[must_use]
pub fn optimizer(name: &str) -> Option<Box<dyn MappingOptimizer>> {
    match name.to_lowercase().as_str() {
        "rs" | "random" => Some(Box::new(RandomSearch)),
        "ga" | "genetic" => Some(Box::new(GeneticAlgorithm::default())),
        "r-pbla" | "rpbla" => Some(Box::new(Rpbla)),
        "sa" | "annealing" => Some(Box::new(SimulatedAnnealing::default())),
        "ils" => Some(Box::new(IteratedLocalSearch::default())),
        "tabu" => Some(Box::new(TabuSearch::default())),
        "exhaustive" => Some(Box::new(Exhaustive)),
        _ => None,
    }
}

/// Parses an optimizer spec of the form `name[@neighborhood]` — e.g.
/// `r-pbla@sampled` or plain `tabu` — into the optimizer and the
/// [`NeighborhoodPolicy`] the run should pin (`None` means "leave the
/// context default", i.e. [`NeighborhoodPolicy::Auto`]). Returns `None`
/// for an unknown optimizer name *or* an unknown policy suffix.
#[must_use]
pub fn optimizer_spec(
    spec: &str,
) -> Option<(Box<dyn MappingOptimizer>, Option<NeighborhoodPolicy>)> {
    match spec.split_once('@') {
        Some((name, policy)) => {
            Some((optimizer(name)?, Some(NeighborhoodPolicy::by_name(policy)?)))
        }
        None => Some((optimizer(spec)?, None)),
    }
}

/// A resolved search spec: either one optimizer (with its optional
/// pinned neighbourhood policy) or a whole multi-lane portfolio.
#[derive(Debug)]
pub enum SearchSpec {
    /// A single-optimizer run (`name[@policy]`).
    Single(Box<dyn MappingOptimizer>, Option<NeighborhoodPolicy>),
    /// A portfolio run (`portfolio:lanes,options` — see
    /// [`PortfolioSpec::parse`]).
    Portfolio(PortfolioSpec),
}

/// Resolves any registry spec — `name[@policy]` or
/// `portfolio:lane+lane,exchange=...,rounds=N[,collapse=K]` — into a
/// [`SearchSpec`].
///
/// # Errors
///
/// Returns a human-readable message for unknown optimizer names,
/// policy suffixes, or malformed portfolio specs.
pub fn search_spec(spec: &str) -> Result<SearchSpec, String> {
    if let Some(body) = spec.strip_prefix("portfolio:") {
        return PortfolioSpec::parse(body).map(SearchSpec::Portfolio);
    }
    optimizer_spec(spec)
        .map(|(opt, policy)| SearchSpec::Single(opt, policy))
        .ok_or_else(|| format!("unknown optimizer spec `{spec}`"))
}

/// Names of all built-in optimizers.
#[must_use]
pub fn builtin_names() -> &'static [&'static str] {
    &["rs", "ga", "r-pbla", "sa", "tabu", "ils", "exhaustive"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_resolves() {
        for name in builtin_names() {
            let opt = optimizer(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(!opt.name().is_empty());
        }
    }

    #[test]
    fn aliases_and_case_insensitivity() {
        assert!(optimizer("RPBLA").is_some());
        assert!(optimizer("Genetic").is_some());
        assert!(optimizer("nonsense").is_none());
    }

    #[test]
    fn specs_carry_neighborhood_policies() {
        let (opt, policy) = optimizer_spec("r-pbla@sampled").unwrap();
        assert_eq!(opt.name(), "r-pbla");
        assert_eq!(policy, Some(NeighborhoodPolicy::Sampled));
        let (_, policy) = optimizer_spec("tabu@Locality").unwrap();
        assert_eq!(policy, Some(NeighborhoodPolicy::Locality));
        let (_, policy) = optimizer_spec("rs").unwrap();
        assert_eq!(policy, None);
        assert!(optimizer_spec("r-pbla@nonsense").is_none());
        assert!(optimizer_spec("nonsense@sampled").is_none());
    }

    #[test]
    fn search_specs_resolve_both_forms() {
        match search_spec("r-pbla@sampled").unwrap() {
            SearchSpec::Single(opt, policy) => {
                assert_eq!(opt.name(), "r-pbla");
                assert_eq!(policy, Some(NeighborhoodPolicy::Sampled));
            }
            SearchSpec::Portfolio(_) => panic!("expected a single optimizer"),
        }
        match search_spec("portfolio:r-pbla@sampled+sa,exchange=ring,rounds=4").unwrap() {
            SearchSpec::Portfolio(spec) => {
                assert_eq!(spec.lanes.len(), 2);
                assert_eq!(spec.rounds, 4);
            }
            SearchSpec::Single(..) => panic!("expected a portfolio"),
        }
        assert!(search_spec("portfolio:").is_err());
        assert!(search_spec("portfolio:nonsense").is_err());
        assert!(search_spec("nonsense").is_err());
    }
}
