//! Cross-crate compatibility and failure-injection tests: the places
//! where independently developed pieces (routers, routing algorithms,
//! topologies, applications) must either compose or fail loudly.

use phonocmap::core::CoreError;
use phonocmap::prelude::*;

fn pitch() -> Length {
    Length::from_mm(2.5)
}

#[test]
fn yx_routing_on_crux_is_rejected_with_the_offending_turn() {
    // Crux implements no Y→X turns; the evaluator must identify the
    // exact unsupported connection instead of silently mis-modeling.
    let err = MappingProblem::new(
        benchmarks::pip(),
        Topology::mesh(3, 3, pitch()),
        crux_router(),
        Box::new(YxRouting),
        PhysicalParameters::default(),
        Objective::MaximizeWorstCaseSnr,
    )
    .unwrap_err();
    match err {
        CoreError::UnsupportedConnection { router, pair } => {
            assert_eq!(router, "crux");
            assert!(
                matches!(pair.input, Port::North | Port::South),
                "the offending pair must be a Y→X turn, got {pair}"
            );
        }
        other => panic!("expected UnsupportedConnection, got {other}"),
    }
}

#[test]
fn yx_routing_on_the_full_crossbar_works() {
    let p = MappingProblem::new(
        benchmarks::pip(),
        Topology::mesh(3, 3, pitch()),
        crossbar_router(),
        Box::new(YxRouting),
        PhysicalParameters::default(),
        Objective::MaximizeWorstCaseSnr,
    )
    .expect("crossbar supports all turns");
    let r = run_dse(&p, &RandomSearch, &DseConfig::new(200, 1));
    assert!(r.best_mapping.is_valid());
}

#[test]
fn ring_topology_with_ring_routing_composes_with_crux() {
    // Rings use only the E/W ports plus inject/eject, all of which Crux
    // implements.
    let p = MappingProblem::new(
        benchmarks::pip(),
        Topology::ring(9, pitch()),
        crux_router(),
        Box::new(RingRouting),
        PhysicalParameters::default(),
        Objective::MinimizeWorstCaseLoss,
    )
    .expect("ring + ring-routing + crux is a valid stack");
    let r = run_dse(&p, &Rpbla, &DseConfig::new(500, 2));
    assert!(r.best_score < 0.0, "ring paths lose power");
}

#[test]
fn xy_routing_rejects_ring_topologies() {
    let err = MappingProblem::new(
        benchmarks::pip(),
        Topology::ring(9, pitch()),
        crux_router(),
        Box::new(XyRouting),
        PhysicalParameters::default(),
        Objective::MinimizeWorstCaseLoss,
    )
    .unwrap_err();
    assert!(matches!(err, CoreError::Routing(_)), "got {err}");
}

#[test]
fn oversized_applications_are_rejected_up_front() {
    let err = MappingProblem::new(
        benchmarks::dvopd(), // 32 tasks
        Topology::mesh(4, 4, pitch()),
        crux_router(),
        Box::new(XyRouting),
        PhysicalParameters::default(),
        Objective::MaximizeWorstCaseSnr,
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::TooManyTasks {
                tasks: 32,
                tiles: 16
            }
        ),
        "got {err}"
    );
}

#[test]
fn corrupted_physical_parameters_are_rejected() {
    let params = PhysicalParameters::builder()
        .crossing_crosstalk(Db(5.0)) // a crosstalk *gain* is nonsense
        .build();
    let err = MappingProblem::new(
        benchmarks::pip(),
        Topology::mesh(3, 3, pitch()),
        crux_router(),
        Box::new(XyRouting),
        params,
        Objective::MaximizeWorstCaseSnr,
    )
    .unwrap_err();
    assert!(matches!(err, CoreError::BadParameters(_)), "got {err}");
}

#[test]
fn custom_router_flows_through_the_whole_stack() {
    // A minimal user-defined router good enough for a 1-D pipeline:
    // straight W/E passes plus inject/eject, built with the public DSL.
    fn tiny_router() -> RouterModel {
        use PassMode::{Cross, Off, On};
        let mut b = NetlistBuilder::new("tiny-we");
        b.cpse("ej_w", "w_in", "w1", "ejw", "l_w");
        b.cpse("ej_e", "e_in", "e1", "eje", "l_e");
        b.cpse("inj_e", "l_in", "inj1", "w1", "w_out");
        b.cpse("inj_w", "inj1", "inj2", "e1", "e_out");
        b.bind_input(Port::West, "w_in");
        b.bind_output(Port::East, "w_out");
        b.bind_input(Port::East, "e_in");
        b.bind_output(Port::West, "e_out");
        b.bind_input(Port::Local, "l_in");
        b.bind_output_set(Port::Local, &["l_w", "l_e"]);
        b.route(Port::West, Port::East, &[("ej_w", Off), ("inj_e", Cross)]);
        b.route(Port::East, Port::West, &[("ej_e", Off), ("inj_w", Cross)]);
        b.route(Port::Local, Port::East, &[("inj_e", On)]);
        b.route(Port::Local, Port::West, &[("inj_e", Off), ("inj_w", On)]);
        b.route(Port::West, Port::Local, &[("ej_w", On)]);
        b.route(Port::East, Port::Local, &[("ej_e", On)]);
        b.build().expect("tiny router validates")
    }

    let p = MappingProblem::new(
        phonocmap::apps::synthetic::pipeline(6),
        Topology::mesh(6, 1, pitch()),
        tiny_router(),
        Box::new(XyRouting),
        PhysicalParameters::default(),
        Objective::MinimizeWorstCaseLoss,
    )
    .expect("1-D mesh never needs N/S connections");
    let r = run_dse(&p, &Rpbla, &DseConfig::new(1_000, 6));
    // The optimum for a pipeline on a line is the identity-like chain:
    // every hop adjacent.
    let report = analyze(&p, &r.best_mapping);
    assert!(
        report.worst_case_il.0 > -1.5,
        "adjacent chain expected, got {}",
        report.worst_case_il
    );
}

#[test]
fn torus_wrap_paths_actually_use_fewer_hops() {
    let topo = Topology::torus(5, 5, pitch());
    let p = MappingProblem::new(
        phonocmap::apps::synthetic::pipeline(2),
        topo,
        crux_router(),
        Box::new(XyRouting),
        PhysicalParameters::default(),
        Objective::MinimizeWorstCaseLoss,
    )
    .unwrap();
    // Opposite edges of the grid: 1 wrap hop instead of 4.
    assert_eq!(p.evaluator().path_hops(0, 4), Some(2));
    assert_eq!(p.evaluator().path_hops(0, 20), Some(2));
}
