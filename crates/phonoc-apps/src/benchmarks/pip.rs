//! PIP — picture-in-picture application, 8 tasks.
//!
//! The smallest of the paper's benchmarks ("application PIP mapped on a
//! 3×3 topology"). The task graph follows the standard
//! picture-in-picture dataflow used throughout the NoC mapping
//! literature: the main picture is scaled horizontally and vertically
//! while the inset picture takes the combined scaler path, and both meet
//! in memory before display.

use crate::cg::{CgBuilder, CommunicationGraph};

/// Builds the 8-task PIP communication graph.
///
/// # Examples
///
/// ```
/// let cg = phonoc_apps::benchmarks::pip();
/// assert_eq!(cg.task_count(), 8);
/// ```
#[must_use]
pub fn pip() -> CommunicationGraph {
    CgBuilder::new("PIP")
        .tasks([
            "inp_mem", "hs", "vs", "jug1", "hvs", "jug2", "mem", "op_disp",
        ])
        .edge("inp_mem", "hs", 128.0)
        .edge("hs", "vs", 64.0)
        .edge("vs", "jug1", 64.0)
        .edge("jug1", "mem", 64.0)
        .edge("inp_mem", "hvs", 96.0)
        .edge("hvs", "jug2", 96.0)
        .edge("jug2", "mem", 96.0)
        .edge("mem", "op_disp", 64.0)
        .build()
        .expect("the PIP benchmark graph must validate")
}

#[cfg(test)]
mod tests {
    #[test]
    fn pip_shape() {
        let cg = super::pip();
        assert_eq!(cg.task_count(), 8, "paper: PIP has 8 tasks");
        assert_eq!(cg.edge_count(), 8);
        assert!(cg.is_weakly_connected());
    }
}
