//! Physical-layer foundations for photonic network-on-chip analysis.
//!
//! This crate is the "Libraries" module of the PhoNoCMap architecture
//! (paper Fig. 1, box 2): the photonic building blocks — waveguides,
//! microring resonators, waveguide crossings — and their physical
//! loss/crosstalk coefficients, together with the first-order analytical
//! transfer model of Eqs. (1a)–(1j).
//!
//! # Layout
//!
//! * [`units`] — `Db`, `LinearGain`, `Dbm`, `Milliwatts`, `Length`
//!   newtypes with the conversions the rest of the workspace relies on.
//! * [`params`] — [`params::PhysicalParameters`], defaulting to the
//!   paper's Table I.
//! * [`elements`] — PSE geometries/states and the ten transfer equations.
//! * [`ber`] — Q-factor / bit-error-rate estimation (extension).
//! * [`budget`] — laser power budget and WDM scalability analysis
//!   (extension).
//!
//! # Example: evaluating one switching stage by hand
//!
//! ```
//! use phonoc_phys::elements::{ElementTransfer, PseKind, ResonanceState};
//! use phonoc_phys::params::PhysicalParameters;
//! use phonoc_phys::units::{Db, Milliwatts};
//!
//! let params = PhysicalParameters::default();
//! let t = ElementTransfer::new(&params);
//!
//! // A signal turning inside a router: one ON crossing-PSE…
//! let after_turn = t.pse_main_output(PseKind::Crossing, ResonanceState::On, Milliwatts(1.0));
//! // …then 0.25 cm of silicon waveguide to the next router.
//! let at_next_router = after_turn.attenuate(t.propagation_loss(0.25));
//! assert!(at_next_router.0 < 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ber;
pub mod budget;
pub mod elements;
pub mod params;
pub mod units;
pub mod wdm;

pub use budget::PowerBudget;
pub use elements::{ElementTransfer, PseKind, ResonanceState};
pub use params::{PhysicalParameters, PhysicalParametersBuilder};
pub use units::{Db, Dbm, Length, LinearGain, Milliwatts};
pub use wdm::{wdm_feasibility, WdmFeasibility, WdmGrid};
