//! Property tests for the adaptive (hybrid) SNR peek strategy: routing
//! a peek through the full-scratch path, the exact delta, or the
//! bound-then-verify peek is an implementation detail that must never
//! leak into search behaviour.
//!
//! * every exact peek score is **bit-identical** under
//!   [`PeekStrategy::Delta`], [`PeekStrategy::Full`] and
//!   [`PeekStrategy::Hybrid`], across the scenario families (including
//!   12×12 meshes);
//! * greedy descents (steepest improvement over an admitted list —
//!   the R-PBLA step) select the same move sequence, commit the same
//!   mappings and end on the same committed score under all three
//!   strategies, and that score matches an independent full
//!   evaluation;
//! * the hybrid's budget books stay honest: every peek is counted as
//!   exactly one full *or* one delta evaluation, matching its route.

use phonoc_apps::scenario::{ScenarioFamily, ScenarioSpec};
use phonoc_core::{Mapping, MappingProblem, Move, MoveEval, Objective, OptContext, PeekStrategy};
use phonoc_phys::{Length, PhysicalParameters};
use phonoc_route::XyRouting;
use phonoc_router::crux::crux_router;
use phonoc_topo::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The swept instances: every family small, plus 6×6 and 12×12 cells so
/// the router sees sparse-at-scale shapes where the delta wins.
fn scenario_instances() -> Vec<(ScenarioSpec, MappingProblem)> {
    let mut specs = Vec::new();
    for family in ScenarioFamily::ALL {
        specs.push(ScenarioSpec {
            family,
            mesh: 4,
            density_pct: 100,
            seed: 1,
        });
    }
    for family in [
        ScenarioFamily::Random,
        ScenarioFamily::Hotspot,
        ScenarioFamily::Clustered,
    ] {
        specs.push(ScenarioSpec {
            family,
            mesh: 6,
            density_pct: 200,
            seed: 2,
        });
    }
    for family in [ScenarioFamily::Pipeline, ScenarioFamily::Hotspot] {
        specs.push(ScenarioSpec {
            family,
            mesh: 12,
            density_pct: 100,
            seed: 1,
        });
    }
    specs
        .into_iter()
        .map(|spec| {
            let problem = MappingProblem::new(
                spec.build(),
                Topology::mesh(spec.mesh, spec.mesh, Length::from_mm(2.5)),
                crux_router(),
                Box::new(XyRouting),
                PhysicalParameters::default(),
                Objective::MaximizeWorstCaseSnr,
            )
            .expect("scenario problems are valid");
            (spec, problem)
        })
        .collect()
}

const STRATEGIES: [PeekStrategy; 3] = [
    PeekStrategy::Delta,
    PeekStrategy::Full,
    PeekStrategy::Hybrid,
];

/// A deterministic admitted-list subset: big meshes would make full
/// `O(n²)` scans the dominant test cost without adding coverage.
fn admitted_subset(tasks: usize, tiles: usize, cap: usize) -> Vec<Move> {
    let mut moves = Vec::new();
    for a in 0..tasks.min(tiles) {
        for b in (a + 1)..tiles {
            moves.push(Move::Swap(a, b));
        }
    }
    if moves.len() > cap {
        // Deterministic thinning: keep every k-th move.
        let k = moves.len().div_ceil(cap);
        moves = moves.into_iter().step_by(k).collect();
    }
    moves
}

/// First maximum-score entry (the steepest-descent selection).
fn best_of(evals: &[MoveEval]) -> Option<&MoveEval> {
    let mut best: Option<&MoveEval> = None;
    for ev in evals {
        if best.is_none_or(|b| ev.score() > b.score()) {
            best = Some(ev);
        }
    }
    best
}

#[test]
fn exact_peeks_are_bit_identical_under_every_strategy() {
    for (spec, p) in scenario_instances() {
        let mut rng = StdRng::seed_from_u64(0x4859);
        let start = Mapping::random(p.task_count(), p.tile_count(), &mut rng);
        let moves: Vec<Move> = (0..40).map(|_| start.random_swap_move(&mut rng)).collect();

        let mut contexts: Vec<OptContext<'_>> = STRATEGIES
            .iter()
            .map(|&s| {
                let mut ctx = OptContext::new(&p, 10_000_000, 0);
                ctx.set_peek_strategy(s);
                ctx.set_current(start.clone()).expect("budget is huge");
                ctx
            })
            .collect();

        for &mv in &moves {
            let evals: Vec<MoveEval> = contexts
                .iter_mut()
                .map(|ctx| ctx.peek_move(mv).expect("budget is huge"))
                .collect();
            // `peek_move` is exact under every strategy; scores match
            // to the bit, and the reference (Delta) score matches an
            // independent from-scratch evaluation.
            for (ev, strategy) in evals.iter().zip(STRATEGIES) {
                assert!(ev.is_exact(), "{}: {strategy:?}", spec.id());
                assert_eq!(
                    ev.score(),
                    evals[0].score(),
                    "{}: {strategy:?} diverged on {mv:?}",
                    spec.id()
                );
                assert_eq!(ev.mv(), mv);
            }
            let (_, full) = p.evaluate(&start.with_move(mv));
            assert_eq!(evals[0].score(), full, "{}: {mv:?}", spec.id());
        }
    }
}

#[test]
fn greedy_descent_is_strategy_invariant_and_commits_true_scores() {
    for (spec, p) in scenario_instances() {
        let moves = admitted_subset(p.task_count(), p.tile_count(), 400);
        let mut rng = StdRng::seed_from_u64(0xD15C);
        let start = Mapping::random(p.task_count(), p.tile_count(), &mut rng);

        let mut contexts: Vec<OptContext<'_>> = STRATEGIES
            .iter()
            .map(|&s| {
                let mut ctx = OptContext::new(&p, 10_000_000, 0);
                ctx.set_peek_strategy(s);
                ctx.set_current(start.clone()).expect("budget is huge");
                ctx
            })
            .collect();

        for step in 0..4 {
            // All three scans must agree on the steepest improving move
            // (or on the absence of one).
            let scans: Vec<Vec<MoveEval>> = contexts
                .iter_mut()
                .map(|ctx| ctx.peek_moves_improving(&moves))
                .collect();
            let current = contexts[0].current_score().expect("cursor set");
            let reference = best_of(&scans[0]).expect("nonempty scan");
            let improving = reference.score() > current;
            for (scan, strategy) in scans.iter().zip(STRATEGIES) {
                assert_eq!(scan.len(), moves.len(), "{}: truncated scan", spec.id());
                let best = best_of(scan).expect("nonempty scan");
                if improving {
                    assert_eq!(
                        best.mv(),
                        reference.mv(),
                        "{}: {strategy:?} selected a different move at step {step}",
                        spec.id()
                    );
                    assert_eq!(best.score(), reference.score(), "{}", spec.id());
                    assert!(best.is_exact(), "{}: improving move not exact", spec.id());
                } else {
                    assert!(
                        best.score() <= current,
                        "{}: {strategy:?} invented an improvement",
                        spec.id()
                    );
                }
            }
            if !improving {
                break;
            }
            for (ctx, scan) in contexts.iter_mut().zip(&scans) {
                let best = *best_of(scan).expect("nonempty scan");
                ctx.apply_scored_move(&best);
            }
            let mapping = contexts[0].current_mapping().unwrap().clone();
            let score = contexts[0].current_score().unwrap();
            for ctx in &contexts {
                assert_eq!(ctx.current_mapping().unwrap(), &mapping, "{}", spec.id());
                assert_eq!(ctx.current_score().unwrap(), score, "{}", spec.id());
            }
            // The committed score is the true score: an independent full
            // evaluation of the committed mapping agrees to the bit.
            let (_, full) = p.evaluate(&mapping);
            assert_eq!(score, full, "{}: committed score drifted", spec.id());
        }
    }
}

/// Cross-layer objectives over a small scenario slice: every member of
/// [`Objective::ALL`] beyond the two plain paper objectives.
fn power_family_instances() -> Vec<(Objective, MappingProblem)> {
    let mut out = Vec::new();
    for objective in Objective::ALL {
        if objective.modulation().is_none() {
            continue;
        }
        for (family, mesh) in [(ScenarioFamily::Random, 4), (ScenarioFamily::Hotspot, 6)] {
            let spec = ScenarioSpec {
                family,
                mesh,
                density_pct: 100,
                seed: 1,
            };
            let problem = MappingProblem::new(
                spec.build(),
                Topology::mesh(spec.mesh, spec.mesh, Length::from_mm(2.5)),
                crux_router(),
                Box::new(XyRouting),
                PhysicalParameters::default(),
                objective,
            )
            .expect("scenario problems are valid");
            out.push((objective, problem));
        }
    }
    out
}

#[test]
fn power_family_peeks_are_bit_identical_under_every_strategy() {
    for (objective, p) in power_family_instances() {
        let mut rng = StdRng::seed_from_u64(0x90E4);
        let start = Mapping::random(p.task_count(), p.tile_count(), &mut rng);
        let moves: Vec<Move> = (0..30).map(|_| start.random_swap_move(&mut rng)).collect();

        let mut contexts: Vec<OptContext<'_>> = STRATEGIES
            .iter()
            .map(|&s| {
                let mut ctx = OptContext::new(&p, 10_000_000, 0);
                ctx.set_peek_strategy(s);
                ctx.set_current(start.clone()).expect("budget is huge");
                ctx
            })
            .collect();

        for &mv in &moves {
            let evals: Vec<MoveEval> = contexts
                .iter_mut()
                .map(|ctx| ctx.peek_move(mv).expect("budget is huge"))
                .collect();
            for (ev, strategy) in evals.iter().zip(STRATEGIES) {
                assert!(ev.is_exact(), "{objective}: {strategy:?}");
                assert_eq!(
                    ev.score(),
                    evals[0].score(),
                    "{objective}: {strategy:?} diverged on {mv:?}"
                );
            }
            // The peek score is the objective applied to a full
            // independent evaluation, to the bit — the delta/bounded/
            // hybrid routes all collapse onto the same number.
            let metrics = p.evaluator().evaluate(&start.with_move(mv));
            assert_eq!(
                evals[0].score(),
                objective.score(&metrics),
                "{objective}: {mv:?}"
            );
        }
    }
}

#[test]
fn power_family_greedy_descent_is_strategy_invariant() {
    for (objective, p) in power_family_instances() {
        let moves = admitted_subset(p.task_count(), p.tile_count(), 300);
        let mut rng = StdRng::seed_from_u64(0x90E5);
        let start = Mapping::random(p.task_count(), p.tile_count(), &mut rng);

        let mut contexts: Vec<OptContext<'_>> = STRATEGIES
            .iter()
            .map(|&s| {
                let mut ctx = OptContext::new(&p, 10_000_000, 0);
                ctx.set_peek_strategy(s);
                ctx.set_current(start.clone()).expect("budget is huge");
                ctx
            })
            .collect();

        for step in 0..3 {
            let scans: Vec<Vec<MoveEval>> = contexts
                .iter_mut()
                .map(|ctx| ctx.peek_moves_improving(&moves))
                .collect();
            let current = contexts[0].current_score().expect("cursor set");
            let reference = best_of(&scans[0]).expect("nonempty scan");
            let improving = reference.score() > current;
            for (scan, strategy) in scans.iter().zip(STRATEGIES) {
                let best = best_of(scan).expect("nonempty scan");
                if improving {
                    assert_eq!(
                        best.mv(),
                        reference.mv(),
                        "{objective}: {strategy:?} selected a different move at step {step}"
                    );
                    assert_eq!(best.score(), reference.score(), "{objective}");
                    assert!(best.is_exact(), "{objective}: improving move not exact");
                } else {
                    assert!(
                        best.score() <= current,
                        "{objective}: {strategy:?} invented an improvement"
                    );
                }
            }
            if !improving {
                break;
            }
            for (ctx, scan) in contexts.iter_mut().zip(&scans) {
                let best = *best_of(scan).expect("nonempty scan");
                ctx.apply_scored_move(&best);
            }
            // Committed scores are true objective scores.
            let mapping = contexts[0].current_mapping().unwrap().clone();
            let score = contexts[0].current_score().unwrap();
            for ctx in &contexts {
                assert_eq!(ctx.current_mapping().unwrap(), &mapping, "{objective}");
                assert_eq!(ctx.current_score().unwrap(), score, "{objective}");
            }
            let metrics = p.evaluator().evaluate(&mapping);
            assert_eq!(score, objective.score(&metrics), "{objective}: drift");
        }
    }
}

#[test]
fn power_route_peeks_keep_the_budget_ledger_honest() {
    for (objective, p) in power_family_instances() {
        let mut ctx = OptContext::new(&p, 10_000_000, 3);
        ctx.set_peek_strategy(PeekStrategy::Hybrid);
        let start = ctx.random_mapping();
        ctx.set_current(start).expect("budget is huge");
        assert_eq!(ctx.full_evaluations(), 1, "set_current is one full");
        assert_eq!(ctx.used(), 1, "a full costs one equivalent");

        let moves = admitted_subset(p.task_count(), p.tile_count(), 100);

        // Exact scan: loss-based objectives never route to full (their
        // fast path is always cheaper); SNR-based ones may.
        let before = ctx.used();
        let scanned = ctx.peek_moves(&moves);
        let routed_full = scanned
            .iter()
            .filter(|ev| matches!(ev, MoveEval::Full { .. }))
            .count();
        if objective.is_loss_based() {
            assert_eq!(routed_full, 0, "{objective}: loss peeks routed to full");
        }
        assert_eq!(ctx.full_evaluations(), 1 + routed_full, "{objective}");
        assert_eq!(
            ctx.delta_evaluations(),
            moves.len() - routed_full,
            "{objective}"
        );
        // Work-aware accounting (in full-evaluation-equivalents): the
        // scan is never free, and no peek may cost more than a full.
        let spent = ctx.used() - before;
        assert!(spent > 0, "{objective}: peeks were free");
        assert!(spent <= moves.len(), "{objective}: peeks over-charged");

        // Improving scan: bounded rejections also charge their work —
        // one more booked delta per peek, nonzero total spend.
        let before = ctx.used();
        let deltas_before = ctx.delta_evaluations();
        let improving = ctx.peek_moves_improving(&moves);
        assert_eq!(improving.len(), moves.len());
        let routed_full = improving
            .iter()
            .filter(|ev| matches!(ev, MoveEval::Full { .. }))
            .count();
        if objective.is_loss_based() {
            assert_eq!(routed_full, 0, "{objective}: loss peeks routed to full");
        }
        assert_eq!(
            ctx.delta_evaluations() - deltas_before,
            moves.len() - routed_full,
            "{objective}: every peek (rejections included) books one delta"
        );
        let spent = ctx.used() - before;
        assert!(spent > 0, "{objective}: rejections were free");
        assert!(spent <= moves.len(), "{objective}");
    }
}

#[test]
fn hybrid_books_every_peek_as_exactly_one_evaluation() {
    for (spec, p) in scenario_instances() {
        let mut ctx = OptContext::new(&p, 10_000_000, 3);
        ctx.set_peek_strategy(PeekStrategy::Hybrid);
        let start = ctx.random_mapping();
        ctx.set_current(start).expect("budget is huge");
        assert_eq!(ctx.full_evaluations(), 1, "set_current is one full");

        let moves = admitted_subset(p.task_count(), p.tile_count(), 120);
        let scanned = ctx.peek_moves(&moves);
        assert_eq!(scanned.len(), moves.len(), "{}", spec.id());
        // Every peek lands in exactly one ledger, matching its route.
        let routed_full = scanned
            .iter()
            .filter(|ev| matches!(ev, MoveEval::Full { .. }))
            .count();
        assert_eq!(
            ctx.full_evaluations(),
            1 + routed_full,
            "{}: full ledger",
            spec.id()
        );
        assert_eq!(
            ctx.delta_evaluations(),
            moves.len() - routed_full,
            "{}: delta ledger",
            spec.id()
        );
    }
}
