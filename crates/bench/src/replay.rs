//! The warm-start replay harness: seeded request *streams* through one
//! persistent [`WarmCache`], measuring what reuse buys over cold-start
//! (`BENCH_warmstart.json`).
//!
//! The sweep (`BENCH_sweep.json`) measures each request in isolation;
//! this harness measures the service-mode workload the warm-start
//! engine exists for — the same or nearly-the-same mapping request
//! arriving repeatedly. Per cell of the matrix it replays a
//! four-request stream against a cache that persists across the
//! stream:
//!
//! 1. **cold** — the first sighting of the request; a plain portfolio
//!    run, inserted into the cache.
//! 2. **repeat** — the identical request again: must be an *exact hit*
//!    (canonically equal key) returning the cached result with **zero**
//!    optimizer evaluations (`scripts/bench_gate.py` enforces this on
//!    every cell of the committed file).
//! 3. **perturbed** — every edge weight rescaled by a seeded factor in
//!    `[0.9, 1.1]` (≤10% change) via
//!    [`MappingProblem::update_edge_bandwidths`]: a *near hit*. The
//!    harness runs the perturbed problem cold (reference trajectory)
//!    and warm (seeded by the cached elite), and records
//!    **evaluations-to-parity** — the budget the warm run needed before
//!    its incumbent first matched the cold run's *final* score. The
//!    gate holds the median parity ratio on 12×12/16×16 cells to
//!    ≤ 50% of the cold budget.
//! 4. **phase change + return** — a structural mutation (one edge
//!    removed, one added via [`MappingProblem::remove_edge`] /
//!    [`MappingProblem::add_edge`]) solved warm, then the mutation
//!    reverted and the original request replayed: the re-added edge
//!    sits at a different position in the CG's edge list, so this
//!    final request is an end-to-end proof that cache keys are
//!    canonical (sorted) rather than positional — it must be a second
//!    exact hit.
//!
//! Weight-only perturbation does not move the objective (the evaluator
//! reads edge *endpoints*, not bandwidths — see the phonoc-core
//! evaluator docs), so the perturbed cold reference reproduces the
//! original cold trajectory; the parity measurement is still taken
//! from the actually-executed warm trajectory
//! ([`PortfolioResult::round_best`] / `round_evaluations`), not
//! assumed. The structural phase *does* move the objective, and its
//! warm-vs-cold scores are recorded per cell.
//!
//! With `--trace-out PATH` the cache-mediated requests additionally
//! stream `phonocmap-trace/1` events (warm lookups, per-round lane
//! snapshots, per-request session summaries) into a JSONL trace file —
//! the reference input for `phonocmap trace` and the CI trace gate.
//! The cold reference runs stay untraced: the trace records the
//! *request stream*, not the measurement scaffolding.

use crate::sweep::scenario_problem;
use phonoc_apps::scenario::{ScenarioFamily, ScenarioSpec};
use phonoc_apps::TaskId;
use phonoc_core::{render_trace, MappingProblem, NullSink, RunTrace, TraceSink};
use phonoc_opt::{run_portfolio_seeded, PortfolioResult, PortfolioSpec, WarmCache, WarmSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// The portfolio every replay request runs: the sweep's two
/// budget-aware R-PBLA streams under broadcast-best exchange. 14
/// rounds gives the parity measurement a resolution of ~1/14th of the
/// budget.
pub const REPLAY_PORTFOLIO: &str = "r-pbla@sampled+r-pbla@locality,exchange=best,rounds=14";

/// Replay parameters: the cells plus the per-request budget.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Cells to replay a request stream against (one stream per cell).
    pub cells: Vec<ScenarioSpec>,
    /// Per-request optimizer budget in full-evaluation-equivalents.
    pub budget: usize,
    /// Whether this is the CI smoke configuration.
    pub smoke: bool,
}

impl ReplayConfig {
    /// The full replay behind the committed `BENCH_warmstart.json`:
    /// four workload families at 8×8, 12×12 and 16×16 (the gate's
    /// median-parity check reads the 12×12/16×16 cells), at the
    /// sweep's budget.
    #[must_use]
    pub fn full() -> ReplayConfig {
        let families = [
            ScenarioFamily::Pipeline,
            ScenarioFamily::Random,
            ScenarioFamily::Hotspot,
            ScenarioFamily::Clustered,
        ];
        let cells = families
            .iter()
            .flat_map(|&family| {
                [8usize, 12, 16].into_iter().map(move |mesh| ScenarioSpec {
                    family,
                    mesh,
                    density_pct: 100,
                    seed: 1,
                })
            })
            .collect();
        ReplayConfig {
            cells,
            budget: 1_500,
            smoke: false,
        }
    }

    /// The CI smoke replay: two families on small meshes, full budget
    /// semantics (the exact-hit check is budget-independent; the parity
    /// gate only reads 12×12+ cells, which smoke has none of).
    #[must_use]
    pub fn smoke() -> ReplayConfig {
        let cells = [ScenarioFamily::Pipeline, ScenarioFamily::Hotspot]
            .iter()
            .flat_map(|&family| {
                [4usize, 6].into_iter().map(move |mesh| ScenarioSpec {
                    family,
                    mesh,
                    density_pct: 100,
                    seed: 1,
                })
            })
            .collect();
        ReplayConfig {
            cells,
            budget: 300,
            smoke: true,
        }
    }
}

/// Everything measured for one cell's request stream.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell's scenario.
    pub spec: ScenarioSpec,
    /// Stable scenario id (`family-NxN-dD-sS`).
    pub id: String,
    /// Tasks in the cell's CG.
    pub tasks: usize,
    /// Edges in the cell's CG.
    pub edges: usize,
    /// Request 1: cold best score (dB, worst-case SNR).
    pub cold_score: f64,
    /// Request 1: budget consumed.
    pub cold_evaluations: usize,
    /// Request 1: wall-clock, ms.
    pub cold_ms: u64,
    /// Request 2: evaluations the exact-hit repeat performed (the gate
    /// requires 0).
    pub exact_hit_evaluations: usize,
    /// Request 2: whether the cached result reproduced the cold score
    /// bit-for-bit.
    pub exact_hit_score_matches: bool,
    /// Request 3: edges whose weight the perturbation changed.
    pub perturbed_edges: usize,
    /// Request 3: cold-reference best score on the perturbed problem.
    pub perturbed_cold_score: f64,
    /// Request 3: cold-reference budget consumed.
    pub perturbed_cold_evaluations: usize,
    /// Request 3: warm (near-hit) best score.
    pub warm_score: f64,
    /// Request 3: warm budget consumed.
    pub warm_evaluations: usize,
    /// Request 3: warm wall-clock, ms.
    pub warm_ms: u64,
    /// Request 3: directed endpoints shared with the cache donor.
    pub warm_shared_edges: usize,
    /// Request 3: cumulative warm evaluations when the warm incumbent
    /// first reached the cold run's final score (`None` = never —
    /// a gate failure on 12×12+ cells).
    pub parity_evaluations: Option<usize>,
    /// Request 4: how the structurally mutated request was satisfied
    /// (`near_hit` expected — same family, different edge set).
    pub phase_source: String,
    /// Request 4: warm best score on the mutated problem.
    pub phase_score: f64,
    /// Request 4: cold-reference best score on the mutated problem.
    pub phase_cold_score: f64,
    /// Request 4: whether replaying the original request after
    /// reverting the mutation was an exact hit despite the re-added
    /// edge's new list position (canonical-key proof).
    pub return_exact_hit: bool,
}

impl CellOutcome {
    /// `parity_evaluations / perturbed_cold_evaluations` — the fraction
    /// of the cold budget the warm run needed to match the cold final
    /// score. `None` when parity was never reached.
    #[must_use]
    pub fn parity_ratio(&self) -> Option<f64> {
        self.parity_evaluations
            .map(|e| e as f64 / self.perturbed_cold_evaluations.max(1) as f64)
    }
}

/// A finished replay.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Whether the smoke configuration ran.
    pub smoke: bool,
    /// Per-request budget.
    pub budget: usize,
    /// Logical CPU count of the measuring host, straight from
    /// `available_parallelism` — recorded so readers know whether the
    /// replay's wall-clock context had real lane parallelism behind it
    /// (evaluation counts themselves are host-independent).
    pub host_cores: usize,
    /// Per-cell outcomes, in configuration order.
    pub cells: Vec<CellOutcome>,
}

impl ReplayReport {
    /// Whether every repeat request was an exact hit with zero
    /// evaluations and a bit-identical score (the strict gate).
    #[must_use]
    pub fn all_exact_hits_zero(&self) -> bool {
        self.cells
            .iter()
            .all(|c| c.exact_hit_evaluations == 0 && c.exact_hit_score_matches)
    }

    /// Median parity ratio across the 12×12+ cells (the quality gate
    /// reads this). `None` when the configuration has no such cell
    /// (smoke) or some cell never reached parity.
    #[must_use]
    pub fn median_large_parity_ratio(&self) -> Option<f64> {
        let mut ratios = Vec::new();
        for c in self.cells.iter().filter(|c| c.spec.mesh >= 12) {
            ratios.push(c.parity_ratio()?);
        }
        if ratios.is_empty() {
            return None;
        }
        ratios.sort_by(|a, b| a.total_cmp(b));
        let mid = ratios.len() / 2;
        Some(if ratios.len() % 2 == 1 {
            ratios[mid]
        } else {
            (ratios[mid - 1] + ratios[mid]) / 2.0
        })
    }
}

/// Cumulative warm evaluations at the first round whose incumbent
/// reached `target` (worst-case SNR: higher is better).
fn evaluations_to_reach(result: &PortfolioResult, target: f64) -> Option<usize> {
    let mut spent = 0usize;
    for (best, used) in result.round_best.iter().zip(&result.round_evaluations) {
        spent += used;
        if *best >= target {
            return Some(spent);
        }
    }
    None
}

/// The first directed task pair with no edge in either direction
/// (deterministic scan order), for the structural phase mutation.
fn free_pair(problem: &MappingProblem) -> Option<(TaskId, TaskId)> {
    let n = problem.task_count();
    for a in 0..n {
        for b in 0..n {
            if a != b
                && problem.cg().edge_index(TaskId(a), TaskId(b)).is_none()
                && problem.cg().edge_index(TaskId(b), TaskId(a)).is_none()
            {
                return Some((TaskId(a), TaskId(b)));
            }
        }
    }
    None
}

/// Replays one cell's four-request stream through a fresh cache.
///
/// # Panics
///
/// Panics if the stream does not behave as constructed (a repeat that
/// misses the cache, a mutation the problem rejects): these are
/// programming errors, not measurement outcomes.
#[must_use]
pub fn replay_cell(spec: &ScenarioSpec, cfg: &ReplayConfig) -> CellOutcome {
    replay_cell_traced(spec, cfg, &mut NullSink)
}

/// [`replay_cell`] with a [`TraceSink`] receiving the telemetry of the
/// four cache-mediated requests (the cold reference runs stay
/// untraced). Passing [`NullSink`] is bit-identical to [`replay_cell`].
///
/// # Panics
///
/// Same as [`replay_cell`].
#[must_use]
pub fn replay_cell_traced(
    spec: &ScenarioSpec,
    cfg: &ReplayConfig,
    sink: &mut dyn TraceSink,
) -> CellOutcome {
    let pspec = PortfolioSpec::parse(REPLAY_PORTFOLIO).expect("replay spec parses");
    let mut problem = scenario_problem(spec);
    let tasks = problem.task_count();
    let edges = problem.cg().edge_count();
    let originals: Vec<(TaskId, TaskId, f64)> = problem
        .cg()
        .edges()
        .iter()
        .map(|e| (e.src, e.dst, e.bandwidth))
        .collect();
    let mut cache = WarmCache::new();

    // Request 1: cold.
    let t = Instant::now();
    let cold = cache.solve_traced(&problem, &pspec, cfg.budget, spec.seed, sink);
    let cold_ms = t.elapsed().as_millis() as u64;
    assert_eq!(
        cold.source,
        WarmSource::Cold,
        "{}: first sighting",
        spec.id()
    );

    // Request 2: identical repeat — exact hit, zero evaluations.
    let repeat = cache.solve_traced(&problem, &pspec, cfg.budget, spec.seed, sink);
    assert_eq!(repeat.source, WarmSource::ExactHit, "{}: repeat", spec.id());

    // Request 3: ≤10% weight perturbation (seeded off the cell).
    let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_mul(0x9E37_79B9).wrapping_add(101));
    let updates: Vec<(TaskId, TaskId, f64)> = originals
        .iter()
        .map(|&(s, d, bw)| (s, d, bw * rng.gen_range(0.9..=1.1)))
        .collect();
    problem
        .update_edge_bandwidths(&updates)
        .expect("perturbation targets existing edges");
    let perturbed_cold = run_portfolio_seeded(&problem, &pspec, cfg.budget, spec.seed, None);
    let t = Instant::now();
    let warm = cache.solve_traced(&problem, &pspec, cfg.budget, spec.seed, sink);
    let warm_ms = t.elapsed().as_millis() as u64;
    let warm_shared_edges = match warm.source {
        WarmSource::NearHit { shared_edges, .. } => shared_edges,
        ref other => panic!(
            "{}: perturbed request should near-hit, got {other:?}",
            spec.id()
        ),
    };
    let parity_evaluations = evaluations_to_reach(&warm.result, perturbed_cold.best_score);

    // Request 4: structural phase change (one edge out, one in), then
    // the stream returns to the original request.
    let (rm_src, rm_dst, _) = originals[0];
    problem
        .remove_edge(rm_src, rm_dst)
        .expect("the first original edge exists");
    let (add_src, add_dst) = free_pair(&problem).expect("scenario CGs are not complete digraphs");
    let mean_bw = originals.iter().map(|&(_, _, bw)| bw).sum::<f64>() / originals.len() as f64;
    problem
        .add_edge(add_src, add_dst, mean_bw)
        .expect("the pair was free");
    let phase_cold = run_portfolio_seeded(&problem, &pspec, cfg.budget, spec.seed, None);
    let phase = cache.solve_traced(&problem, &pspec, cfg.budget, spec.seed, sink);
    let phase_source = match phase.source {
        WarmSource::ExactHit => "exact_hit",
        WarmSource::NearHit { .. } => "near_hit",
        WarmSource::Cold => "cold",
    };

    // Revert: drop the added edge, restore the removed one (it lands at
    // the *end* of the CG's edge list — canonical keys must not care),
    // restore every original weight.
    problem
        .remove_edge(add_src, add_dst)
        .expect("the phase edge exists");
    let (_, _, rm_bw) = originals[0];
    problem
        .add_edge(rm_src, rm_dst, rm_bw)
        .expect("the original edge was removed");
    problem
        .update_edge_bandwidths(&originals)
        .expect("restoring original weights");
    let back = cache.solve_traced(&problem, &pspec, cfg.budget, spec.seed, sink);

    CellOutcome {
        spec: *spec,
        id: spec.id(),
        tasks,
        edges,
        cold_score: cold.result.best_score,
        cold_evaluations: cold.evaluations_spent,
        cold_ms,
        exact_hit_evaluations: repeat.evaluations_spent,
        exact_hit_score_matches: repeat.result.best_score == cold.result.best_score
            && repeat.result.best_mapping == cold.result.best_mapping,
        perturbed_edges: updates.len(),
        perturbed_cold_score: perturbed_cold.best_score,
        perturbed_cold_evaluations: perturbed_cold.evaluations,
        warm_score: warm.result.best_score,
        warm_evaluations: warm.evaluations_spent,
        warm_ms,
        warm_shared_edges,
        parity_evaluations,
        phase_source: phase_source.to_owned(),
        phase_score: phase.result.best_score,
        phase_cold_score: phase_cold.best_score,
        return_exact_hit: back.source == WarmSource::ExactHit && back.evaluations_spent == 0,
    }
}

/// Runs the whole replay, invoking `progress` after each cell.
#[must_use]
pub fn run_replay(cfg: &ReplayConfig, progress: impl FnMut(&CellOutcome)) -> ReplayReport {
    run_replay_traced(cfg, progress, &mut NullSink)
}

/// [`run_replay`] with a [`TraceSink`] receiving every cell's
/// cache-request telemetry (see [`replay_cell_traced`]). Passing
/// [`NullSink`] is bit-identical to [`run_replay`].
#[must_use]
pub fn run_replay_traced(
    cfg: &ReplayConfig,
    mut progress: impl FnMut(&CellOutcome),
    sink: &mut dyn TraceSink,
) -> ReplayReport {
    let mut cells = Vec::new();
    for spec in &cfg.cells {
        let outcome = replay_cell_traced(spec, cfg, sink);
        progress(&outcome);
        cells.push(outcome);
    }
    ReplayReport {
        smoke: cfg.smoke,
        budget: cfg.budget,
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        cells,
    }
}

/// The shared command-line driver behind `phonocmap replay` and the
/// standalone `replay` bin: parses `--smoke`, `--budget N`,
/// `--out PATH` and `--trace-out PATH`, runs the replay with live
/// progress, prints the warm-start summary and writes the JSON (plus,
/// with `--trace-out`, the `phonocmap-trace/1` JSONL trace — or a
/// header-only trace when `PHONOC_TRACE_NULL` is set, proving the
/// disabled sink records nothing).
///
/// # Errors
///
/// Returns a message for unparseable flag values or an unwritable
/// output path.
pub fn run_replay_cli(args: &[String], command_prefix: &str) -> Result<(), String> {
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut cfg = if smoke {
        ReplayConfig::smoke()
    } else {
        ReplayConfig::full()
    };
    let mut command = format!("{command_prefix}{}", if smoke { " --smoke" } else { "" });
    if let Some(v) = flag("--budget") {
        cfg.budget = v.parse().map_err(|_| format!("bad budget `{v}`"))?;
        let _ = write!(command, " --budget {v}");
    }
    let out = flag("--out").unwrap_or_else(|| "BENCH_warmstart.json".into());
    let trace_out = flag("--trace-out");
    let mut trace_sink: Box<dyn TraceSink> =
        if trace_out.is_some() && std::env::var_os("PHONOC_TRACE_NULL").is_none() {
            Box::new(RunTrace::new())
        } else {
            Box::new(NullSink)
        };

    println!(
        "warm-start replay ({} mode): {} cells, budget {} per request, portfolio `{}`\n",
        if cfg.smoke { "smoke" } else { "full" },
        cfg.cells.len(),
        cfg.budget,
        REPLAY_PORTFOLIO
    );
    println!(
        "{:<26} {:>6} {:>10} {:>6} {:>10} {:>10} {:>8} {:>7}",
        "cell", "edges", "cold", "hit", "warm", "parity", "ratio", "return"
    );
    let report = run_replay_traced(
        &cfg,
        |c| {
            println!(
                "{:<26} {:>6} {:>10.4} {:>6} {:>10.4} {:>10} {:>8} {:>7}",
                c.id,
                c.edges,
                c.cold_score,
                c.exact_hit_evaluations,
                c.warm_score,
                c.parity_evaluations
                    .map_or_else(|| "never".into(), |e| e.to_string()),
                c.parity_ratio()
                    .map_or_else(|| "-".into(), |r| format!("{r:.3}")),
                if c.return_exact_hit { "hit" } else { "MISS" },
            );
        },
        trace_sink.as_mut(),
    );
    println!(
        "\nexact-hit requests at zero evaluations: {}",
        if report.all_exact_hits_zero() {
            "yes"
        } else {
            "NO (gate failure)"
        }
    );
    match report.median_large_parity_ratio() {
        Some(r) => {
            println!("median 12x12/16x16 evaluations-to-parity ratio: {r:.3} (acceptance: <= 0.50)")
        }
        None => println!("no 12x12+ cells in this configuration (parity gate not applicable)"),
    }
    std::fs::write(&out, report_to_json(&report, &command))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    if let Some(path) = trace_out {
        let events = trace_sink.drain();
        std::fs::write(&path, render_trace("replay", &events))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path} ({} events)", events.len());
    }
    Ok(())
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the report as the `phonocmap-bench-warmstart/2` JSON
/// document (hand-rolled — the workspace builds offline, without
/// `serde_json`). Version 2 added the `host_cores` field recording the
/// measuring host's logical CPU count.
#[must_use]
pub fn report_to_json(report: &ReplayReport, command: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"phonocmap-bench-warmstart/2\",");
    let _ = writeln!(out, "  \"command\": \"{}\",", json_escape(command));
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if report.smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(out, "  \"host_cores\": {},", report.host_cores);
    let _ = writeln!(out, "  \"budget\": {},", report.budget);
    let _ = writeln!(
        out,
        "  \"portfolio\": \"{}\",",
        json_escape(REPLAY_PORTFOLIO)
    );
    out.push_str("  \"notes\": [\n");
    let _ = writeln!(
        out,
        "    \"Each cell replays a four-request stream (cold, exact repeat, <=10% weight perturbation, structural phase change + return) through one persistent WarmCache.\","
    );
    let _ = writeln!(
        out,
        "    \"exact_hit.evaluations must be 0 on every cell: a canonically equal request returns the cached result without touching the optimizer (results are deterministic per key).\","
    );
    let _ = writeln!(
        out,
        "    \"parity_evaluations is the cumulative warm-run budget at the first portfolio round whose incumbent matched the perturbed cold run's FINAL score; bench_gate holds the median ratio on 12x12/16x16 cells to <= 0.50 of the cold budget.\","
    );
    let _ = writeln!(
        out,
        "    \"Edge weights are annotations the evaluator never reads, so the perturbed cold reference reproduces the original cold trajectory; the warm trajectory is measured, not assumed. The structural phase DOES move the objective and records warm vs cold scores.\","
    );
    let _ = writeln!(
        out,
        "    \"return_exact_hit replays the original request after reverting the phase mutation; the re-added edge sits at a new position in the CG edge list, so a hit here proves keys canonicalize edge order.\","
    );
    let _ = writeln!(
        out,
        "    \"host_cores records the measuring host's logical CPU count ({}): evaluation counts and scores are host-independent, but any wall-clock reading of this file should know whether lanes actually ran in parallel.\"",
        report.host_cores
    );
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"summary\": {{");
    let _ = writeln!(out, "    \"cells\": {},", report.cells.len());
    let _ = writeln!(
        out,
        "    \"exact_hit_zero_evaluations\": {},",
        report.all_exact_hits_zero()
    );
    let _ = writeln!(
        out,
        "    \"return_exact_hits\": {},",
        report.cells.iter().filter(|c| c.return_exact_hit).count()
    );
    match report.median_large_parity_ratio() {
        Some(r) => {
            let _ = writeln!(out, "    \"median_large_parity_ratio\": {r:.4}");
        }
        None => {
            let _ = writeln!(out, "    \"median_large_parity_ratio\": null");
        }
    }
    let _ = writeln!(out, "  }},");
    out.push_str("  \"cells\": [\n");
    for (i, c) in report.cells.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"id\": \"{}\",", json_escape(&c.id));
        let _ = writeln!(out, "      \"family\": \"{}\",", c.spec.family.name());
        let _ = writeln!(out, "      \"mesh\": {},", c.spec.mesh);
        let _ = writeln!(out, "      \"seed\": {},", c.spec.seed);
        let _ = writeln!(out, "      \"tasks\": {},", c.tasks);
        let _ = writeln!(out, "      \"edges\": {},", c.edges);
        let _ = writeln!(
            out,
            "      \"cold\": {{\"score\": {:.4}, \"evaluations\": {}, \"ms\": {}}},",
            c.cold_score, c.cold_evaluations, c.cold_ms
        );
        let _ = writeln!(
            out,
            "      \"exact_hit\": {{\"evaluations\": {}, \"score_matches\": {}}},",
            c.exact_hit_evaluations, c.exact_hit_score_matches
        );
        let _ = writeln!(
            out,
            "      \"perturbed\": {{\"edges_changed\": {}, \"cold_score\": {:.4}, \"cold_evaluations\": {}, \"warm_score\": {:.4}, \"warm_evaluations\": {}, \"warm_ms\": {}, \"shared_edges\": {}, \"parity_evaluations\": {}, \"parity_ratio\": {}}},",
            c.perturbed_edges,
            c.perturbed_cold_score,
            c.perturbed_cold_evaluations,
            c.warm_score,
            c.warm_evaluations,
            c.warm_ms,
            c.warm_shared_edges,
            c.parity_evaluations
                .map_or_else(|| "null".into(), |e| e.to_string()),
            c.parity_ratio()
                .map_or_else(|| "null".into(), |r| format!("{r:.4}")),
        );
        let _ = writeln!(
            out,
            "      \"phase\": {{\"source\": \"{}\", \"score\": {:.4}, \"cold_score\": {:.4}, \"return_exact_hit\": {}}}",
            c.phase_source, c.phase_score, c.phase_cold_score, c.return_exact_hit
        );
        let _ = writeln!(
            out,
            "    }}{}",
            if i + 1 == report.cells.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ReplayConfig {
        ReplayConfig {
            cells: vec![
                ScenarioSpec {
                    family: ScenarioFamily::Pipeline,
                    mesh: 4,
                    density_pct: 100,
                    seed: 1,
                },
                ScenarioSpec {
                    family: ScenarioFamily::Hotspot,
                    mesh: 4,
                    density_pct: 100,
                    seed: 2,
                },
            ],
            budget: 60,
            smoke: true,
        }
    }

    #[test]
    fn replay_stream_hits_and_renders_valid_shaped_json() {
        let cfg = tiny_config();
        let mut seen = 0;
        let report = run_replay(&cfg, |_| seen += 1);
        assert_eq!(seen, 2);
        assert!(report.all_exact_hits_zero());
        for c in &report.cells {
            assert_eq!(c.exact_hit_evaluations, 0);
            assert!(c.exact_hit_score_matches);
            assert!(c.cold_evaluations > 0);
            assert!(c.warm_evaluations > 0);
            assert_eq!(c.warm_shared_edges, c.edges, "weight-only perturbation");
            assert_eq!(c.phase_source, "near_hit");
            assert!(c.return_exact_hit, "canonical keys survive edge reorder");
            assert!(
                c.warm_score >= c.perturbed_cold_score - 1e-9 || c.parity_evaluations.is_some()
            );
        }
        // Small meshes: no 12×12+ cells, the parity gate is vacuous.
        assert!(report.median_large_parity_ratio().is_none());
        let json = report_to_json(&report, "test");
        assert!(json.contains("\"schema\": \"phonocmap-bench-warmstart/2\""));
        assert!(json.contains("\"host_cores\""));
        assert!(json.contains("\"exact_hit_zero_evaluations\": true"));
        assert!(json.contains("\"pipeline-4x4-d100-s1\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn parity_accounting_reads_the_measured_trajectory() {
        let result = PortfolioResult {
            spec: "test".into(),
            exchange: phonoc_opt::ExchangePolicy::BroadcastBest,
            rounds: 3,
            best_mapping: phonoc_core::Mapping::identity(2, 4),
            best_score: 3.0,
            round_best: vec![1.0, 2.5, 3.0],
            round_evaluations: vec![10, 10, 12],
            evaluations: 32,
            budget: 40,
            collapsed: None,
            lanes: Vec::new(),
            stats: phonoc_core::RunStats::default(),
        };
        assert_eq!(evaluations_to_reach(&result, 2.0), Some(20));
        assert_eq!(evaluations_to_reach(&result, 3.0), Some(32));
        assert_eq!(evaluations_to_reach(&result, 0.5), Some(10));
        assert_eq!(evaluations_to_reach(&result, 9.0), None);
    }
}
