//! Incremental (move-based) evaluation: the delta path of the
//! [`Evaluator`].
//!
//! A [`Move`] perturbs at most two tiles, so only the communications
//! incident to the moved task(s) change their network paths. Everything
//! else can only change through *crosstalk*: a router on one of those
//! old or new paths gains or loses an aggressor. [`EvalState`] caches
//! per-edge noise/IL/SNR, the **per-(edge, hop) aggressor accumulation**
//! (`acc`) of every router visit, and per-router occupancy lists whose
//! entries carry the aggressor data (port pair, prefix gain) inline so
//! the hot loops never chase path pointers. The delta pass
//!
//! 1. collects the moved edges (via the evaluator's task→edges index)
//!    and trims each one to the hops that *really* change — XY routes
//!    from an unmoved source share a bitwise-identical head with the
//!    old path, which is skipped entirely,
//! 2. patches the occupancy lists of the changed tiles and marks a
//!    resident victim hop *dirty* only if a changed occupancy actually
//!    couples into it (nonzero interaction gain after the
//!    same-source/destination exclusions),
//! 3. recomputes just the dirty accumulations against the patched
//!    lists (a branch-free multiply-select loop: excluded or zero-gain
//!    entries contribute an exact `+0.0`), re-sums each affected
//!    victim's noise from its (mostly cached) accumulations, and
//! 4. re-derives the two worst cases with an `O(edges)` min-scan — in
//!    the peek path via a single `log10` (the affected minimum is
//!    selected in the linear ratio domain, where `log10`'s monotonicity
//!    makes the selection exact; debug builds verify against the
//!    canonical scan).
//!
//! # Exactness
//!
//! Incremental results are **bit-identical** to a full
//! [`Evaluator::evaluate`], not merely close. Floating-point addition is
//! commutative but not associative, so this requires discipline rather
//! than luck:
//!
//! * a per-hop accumulation is an ordered sum over the router's
//!   occupancy list (ascending `(edge, hop)`, exactly the full pass's
//!   insertion order); adding a zero term (excluded or zero-gain
//!   entry) instead of skipping it is bit-exact because every term is
//!   non-negative and `x + 0.0 == x` for `x ≥ 0`, which is also what
//!   makes inserting or removing non-coupled entries a no-op;
//! * a victim's noise is `Σ acc·suffix` over its hops in ascending
//!   tile order — precomputed per path as `PathInfo::tile_order` —
//!   which is exactly the expression and order of the full pass's
//!   tile-major loop;
//! * shared path heads are reused only when the old and new hops are
//!   entrywise identical (tile, port pair, and bitwise prefix), which
//!   holds by construction when the leading route segments coincide.
//!
//! The [`Evaluator::apply_move`] commit carries a debug assertion
//! comparing the updated state against a fresh full evaluation, and the
//! workspace property tests (`crates/phonoc-core/tests/`,
//! `tests/properties.rs`) pin the equality on random mappings and moves.

use super::{EvalScratch, EvalSummary, Evaluator, NetworkMetrics, PathInfo};
use crate::mapping::{Mapping, Move};
use crate::parallel;
use phonoc_phys::Db;

/// One occupancy of a router: edge `edge`'s hop `hop` traverses it with
/// port pair `pair`, arriving with linear gain `prefix`. Lists are kept
/// ascending by `(edge, hop)` — the full pass's insertion order. Shared
/// with the scratch-reusing full evaluator ([`super::EvalScratch`]), so
/// both passes run the same branch-free accumulate over the same entry
/// layout.
///
/// The edge's endpoint tasks ride along as packed `u16`s (the evaluator
/// asserts they fit at construction) so the inner accumulate loop runs
/// the same-source/destination exclusions without a gather into the
/// endpoint table.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub(super) struct Occ {
    pub(super) edge: u32,
    pub(super) hop: u32,
    pub(super) pair: u16,
    pub(super) src: u16,
    pub(super) dst: u16,
    pub(super) prefix: f64,
}

/// Mapping-dependent caches enabling incremental re-evaluation.
///
/// Build one with [`Evaluator::init_state`] (a full evaluation), then
/// score candidate moves with [`Evaluator::evaluate_delta`] and commit
/// them with [`Evaluator::apply_move`]. The state is tied to the
/// evaluator and mapping it was built from; the commit path keeps all
/// three in sync.
#[derive(Debug, Clone)]
pub struct EvalState {
    /// Per edge: index of its current path (`src_tile * tiles + dst`).
    path_of_edge: Vec<usize>,
    /// Flat index base per edge: hop `(e, h)` lives at
    /// `hop_offset[e] + h`; `hop_offset[edge_count]` is the total.
    hop_offset: Vec<usize>,
    /// Per (edge, hop): the ordered aggressor accumulation at that
    /// router, flat-indexed by `hop_offset`.
    acc: Vec<f64>,
    /// Per (edge, hop): the hop's suffix gain (exit → detector),
    /// flat-indexed.
    suffix: Vec<f64>,
    /// Per edge: accumulated linear crosstalk noise power
    /// (`Σ acc·suffix` in ascending tile order).
    noise: Vec<f64>,
    /// Per edge: insertion loss in dB (the path's `total_db`).
    il: Vec<f64>,
    /// Per edge: SNR in dB (derived from `noise`, clamped to ceiling).
    snr: Vec<f64>,
    /// Per tile: occupancies ascending by `(edge, hop)`.
    tile_hops: Vec<Vec<Occ>>,
    worst_il: f64,
    worst_snr: f64,
}

impl EvalState {
    /// Worst-case insertion loss (paper Eq. 3) of the cached mapping.
    #[must_use]
    pub fn worst_case_il(&self) -> Db {
        Db(self.worst_il)
    }

    /// Worst-case SNR (paper Eq. 4) of the cached mapping.
    #[must_use]
    pub fn worst_case_snr(&self) -> Db {
        Db(self.worst_snr)
    }

    /// Number of edges whose metrics are cached.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.noise.len()
    }

    /// Total router occupancies of the cached mapping (the sum of all
    /// path lengths) — the `Σ hops` term of the evaluation cost.
    #[must_use]
    pub fn hop_count(&self) -> usize {
        self.acc.len()
    }

    /// Materializes full [`NetworkMetrics`] from the cached state.
    #[must_use]
    pub fn to_metrics(&self) -> NetworkMetrics {
        NetworkMetrics {
            edges: (0..self.noise.len())
                .map(|e| super::EdgeMetrics {
                    edge: e,
                    insertion_loss: Db(self.il[e]),
                    snr: Db(self.snr[e]),
                })
                .collect(),
            worst_case_il: Db(self.worst_il),
            worst_case_snr: Db(self.worst_snr),
        }
    }
}

/// Outcome of incrementally scoring one [`Move`].
///
/// The two *new* worst cases are bit-identical to what a full
/// re-evaluation of the moved mapping would report; the *old* values
/// echo the state the delta was computed against. `affected_edges` is
/// the number of victims whose noise had to be re-derived — the honest
/// cost of the delta, which the engine uses for budget accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreDelta {
    /// Worst-case insertion loss before the move.
    pub old_worst_il: Db,
    /// Worst-case SNR before the move.
    pub old_worst_snr: Db,
    /// Worst-case insertion loss after the move.
    pub new_worst_il: Db,
    /// Worst-case SNR after the move.
    pub new_worst_snr: Db,
    /// Victim edges whose noise was recomputed (0 for neutral moves).
    pub affected_edges: usize,
}

impl ScoreDelta {
    /// Change in worst-case insertion loss (dB, new − old).
    #[must_use]
    pub fn il_delta(&self) -> f64 {
        self.new_worst_il.0 - self.old_worst_il.0
    }

    /// Change in worst-case SNR (dB, new − old).
    #[must_use]
    pub fn snr_delta(&self) -> f64 {
        self.new_worst_snr.0 - self.old_worst_snr.0
    }
}

/// Outcome of a bound-then-verify SNR peek
/// ([`Evaluator::evaluate_delta_bounded`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundedDelta {
    /// The move cannot lift the worst-case SNR above the threshold it
    /// was tested against: its exact new worst-case SNR is `≤ bound ≤
    /// threshold`. The exact value was **not** fully computed — a
    /// rejected peek must never be committed.
    Rejected {
        /// An admissible upper bound on the move's new worst-case SNR.
        bound: Db,
        /// Victim noise recomputations performed before rejection (0
        /// when the structural bound already rejected) — the honest
        /// evaluator work, used for budget accounting.
        cost: usize,
    },
    /// The move may beat the threshold: the full delta was computed
    /// and is bit-identical to [`Evaluator::evaluate_delta`].
    Exact(ScoreDelta),
}

/// Outcome of a bound-then-verify *loss* peek
/// ([`Evaluator::evaluate_delta_loss_bounded`]) — the crosstalk-free
/// sibling of [`BoundedDelta`], used by the loss-based objective family
/// (worst-case loss, laser power) in improving-only scans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundedLossDelta {
    /// The move cannot lift the worst-case insertion loss above the
    /// threshold it was tested against: its exact new worst-case IL is
    /// `≤ bound ≤ threshold`. The exhaustive edge scan was **not**
    /// performed — a rejected peek must never be committed.
    Rejected {
        /// An admissible upper bound on the move's new worst-case
        /// insertion loss (dB, negative; higher = better).
        bound: Db,
        /// Moved edges whose new paths were looked up before rejection —
        /// the honest evaluator work, used for budget accounting.
        cost: usize,
    },
    /// The move may beat the threshold: the exact new worst case was
    /// computed, bit-identical to [`Evaluator::evaluate_delta_loss`].
    Exact {
        /// Worst-case insertion loss after the move.
        new_worst_il: Db,
        /// Edges whose paths the move changes (the delta's honest cost).
        moved_edges: usize,
    },
}

/// The hybrid peek's cost model: a per-cursor calibration deciding, for
/// each candidate [`Move`], whether a full scratch re-evaluation
/// ([`Evaluator::evaluate_into`]) or the incremental SNR delta
/// ([`Evaluator::evaluate_delta_with`] /
/// [`Evaluator::evaluate_delta_bounded`]) is the cheaper way to score
/// it.
///
/// Built once per [`Evaluator::init_state`]-style full evaluation (the
/// engine rebuilds it at `set_current` time), it captures the problem's
/// density in two statistics, derived from the state's occupancy lists
/// in one `O(tiles + edges)` pass:
///
/// * **mean path length** `h̄ = Σ hops / edges` — how many routers the
///   average communication traverses;
/// * **occupancy concentration** `(Σk²/Σk) / (Σk/tiles)` — the
///   size-biased occupancy of the router a random hop sits on, relative
///   to the plain mean: ≈1 for evenly spread traffic, ≫1 for hub
///   workloads whose worst-case edge lives on one hot router.
///
/// The decision constants are **calibrated from the scenario-matrix
/// sweep** (`BENCH_sweep.json`: 7 generator families × 4×4–16×16 meshes
/// × densities × seeds, measured on dense random placements):
///
/// * the scratch full pass wins *every* cell with `h̄ ≲ 6.6` and loses
///   *every* cell with `h̄ ≳ 8.7`, across all families and densities —
///   the delta's advantage (recomputing only coupled victims) grows
///   with path length, while short-path problems are dominated by the
///   delta's fixed patching/marking overheads;
/// * in improving-only scans the bound-then-verify peek additionally
///   wins on *concentrated* workloads (star/hotspot/MPEG-like hubs)
///   one size class earlier: the incumbent's worst edge sits on the
///   hub, so moves that do not touch it reject via the structural
///   bound at near-zero cost;
/// * a move displacing the majority of all edges (a hub relocation)
///   degenerates the delta into a patched full pass with worse
///   constants, so such moves always route to the full evaluation —
///   this is the per-move part of the decision, fed by the cheap
///   [`Evaluator::moved_edge_count`] estimate (two index lookups).
///
/// The model only *routes* between bit-identical evaluation paths, so a
/// wrong estimate can never change a score or a greedy selection — only
/// the constant factor of the peek (property-tested in
/// `tests/hybrid_properties.rs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeekCostModel {
    /// Mean path length `h̄` of the cursor's mapping.
    mean_hops: f64,
    /// Size-biased occupancy concentration (≥ 1 in practice).
    concentration: f64,
    /// Edge count (for the hub-scale move guard).
    edges: usize,
}

impl PeekCostModel {
    /// `h̄` above which the exact delta beats the scratch full pass
    /// (mid-gap of the measured crossover band 6.6–8.7).
    const DELTA_CROSSOVER_HOPS: f64 = 7.0;
    /// Extreme concentration (a single dominant hub, star-like) pulls
    /// the *exact*-delta crossover one size class earlier: the full
    /// pass pays the hub router's quadratic accumulation on every peek,
    /// the delta only when the move actually perturbs the hub.
    const EXACT_HUB_CONCENTRATION: f64 = 3.5;
    /// Moderate concentration does the same closer to the crossover
    /// (the hotspot/mpeg band at 8×8 in `BENCH_sweep.json`).
    const EXACT_WARM_CONCENTRATION: f64 = 1.6;
    /// `h̄` floor for the moderate-concentration exact crossover.
    const EXACT_WARM_MIN_HOPS: f64 = 5.5;
    /// Concentration above which the bound-then-verify peek wins
    /// improving scans even below the delta crossover…
    const BOUNDED_CONCENTRATION: f64 = 1.5;
    /// …but only once the problem is large enough that rejection saves
    /// real work (below this `h̄`, bounded overheads still dominate).
    const BOUNDED_MIN_HOPS: f64 = 4.5;
    /// `h̄` floor for the hub-concentration early crossovers.
    const HUB_MIN_HOPS: f64 = 5.0;

    /// Calibrates the model from a cursor's evaluation state.
    #[must_use]
    pub fn of(state: &EvalState) -> PeekCostModel {
        let edges = state.edge_count();
        let hops = state.hop_count() as f64;
        let tiles = state.tile_hops.len().max(1) as f64;
        let mut sum_sq = 0.0f64;
        for list in &state.tile_hops {
            let k = list.len() as f64;
            sum_sq += k * k;
        }
        let mean_occ = hops / tiles;
        // Size-biased mean occupancy E_sb[k] = Σk²/Σk: the expected
        // list length at the router a uniformly random hop sits on.
        let biased_occ = if hops > 0.0 { sum_sq / hops } else { 0.0 };
        PeekCostModel {
            mean_hops: hops / edges.max(1) as f64,
            concentration: if mean_occ > 0.0 {
                biased_occ / mean_occ
            } else {
                0.0
            },
            edges,
        }
    }

    /// The complete routing decision the engine's hybrid peeks use:
    /// whether a move displacing `moved_edges` communications goes to
    /// a full scratch re-evaluation (`true`) or to the delta side —
    /// the exact delta for plain peeks, the bound-then-verify peek for
    /// `improving` scans. Neutral moves (`moved_edges == 0`) are free
    /// on the delta path and never routed full. The sweep harness
    /// times exactly this function, so `BENCH_sweep.json` always
    /// measures the router the engine runs.
    #[must_use]
    pub fn routes_full(&self, moved_edges: usize, improving: bool) -> bool {
        moved_edges > 0
            && if improving {
                self.prefers_full_improving(moved_edges)
            } else {
                self.prefers_full(moved_edges)
            }
    }

    /// Whether a move displacing `moved_edges` communications is
    /// estimated to be cheaper to score with a full scratch
    /// re-evaluation than with the exact incremental delta.
    #[must_use]
    pub fn prefers_full(&self, moved_edges: usize) -> bool {
        if 2 * moved_edges > self.edges {
            return true; // hub-scale move: the delta degenerates
        }
        self.mean_hops < Self::DELTA_CROSSOVER_HOPS
            && !(self.concentration >= Self::EXACT_HUB_CONCENTRATION
                && self.mean_hops >= Self::HUB_MIN_HOPS)
            && !(self.concentration >= Self::EXACT_WARM_CONCENTRATION
                && self.mean_hops >= Self::EXACT_WARM_MIN_HOPS)
    }

    /// [`PeekCostModel::prefers_full`] for improving-only scans, where
    /// the delta side is the bound-then-verify peek: concentrated
    /// (hub-heavy) workloads reject most moves through the structural
    /// bound, which moves the crossover one size class earlier.
    #[must_use]
    pub fn prefers_full_improving(&self, moved_edges: usize) -> bool {
        if 2 * moved_edges > self.edges {
            return true;
        }
        self.mean_hops < Self::DELTA_CROSSOVER_HOPS
            && !(self.concentration >= Self::BOUNDED_CONCENTRATION
                && self.mean_hops >= Self::BOUNDED_MIN_HOPS)
    }

    /// Mean path length `h̄` the model was calibrated on (diagnostic;
    /// the sweep harness records it alongside measured timings).
    #[must_use]
    pub fn mean_path_hops(&self) -> f64 {
        self.mean_hops
    }

    /// Occupancy concentration the model was calibrated on (diagnostic).
    #[must_use]
    pub fn concentration(&self) -> f64 {
        self.concentration
    }
}

/// Reusable buffers for delta evaluation.
///
/// One scratch serves any number of sequential
/// [`Evaluator::evaluate_delta_with`] calls; parallel batch entry points
/// draw one from each worker's sticky scratch slot (built once per
/// worker lifetime — see [`crate::parallel`]). All buffers use
/// epoch-stamped marks, so reuse never requires clearing.
#[derive(Debug, Default, Clone)]
pub struct DeltaScratch {
    epoch: u32,
    /// Edges incident to a moved task (their paths change).
    moved: Vec<usize>,
    moved_mark: Vec<u32>,
    /// Per edge (dense): its new path index (valid where moved).
    new_path: Vec<usize>,
    /// Per edge (dense): length of the bitwise-shared head between its
    /// old and new paths (valid where moved).
    head_len: Vec<u32>,
    /// Per moved edge (parallel to `moved`): its accumulations along
    /// the new path.
    moved_acc: Vec<Vec<f64>>,
    /// Victims whose noise changes.
    affected: Vec<usize>,
    affected_mark: Vec<u32>,
    new_noise: Vec<f64>,
    new_snr: Vec<f64>,
    /// Per (edge, hop) flat index: updated accumulation (valid where
    /// `acc_mark` carries the current epoch). Flat indices refer to the
    /// *current* state layout, so only kept hops use them.
    acc_new: Vec<f64>,
    acc_mark: Vec<u32>,
    /// Lazy-recompute memo for the bound-then-verify path: `acc_new`
    /// at this flat index has been computed this epoch.
    acc_done: Vec<u32>,
    /// Kept victim hops needing recomputation: `(edge, hop, tile,
    /// pair)`.
    dirty_hops: Vec<(u32, u32, u32, u16)>,
    /// Tiles whose occupancy changes, with patched hop lists and the
    /// changed occupancies (old removals + new insertions) there.
    tile_mark: Vec<u32>,
    tile_slot: Vec<u32>,
    patched_tiles: Vec<usize>,
    patched_lists: Vec<Vec<Occ>>,
    changed_occs: Vec<Vec<(u32, u16)>>,
}

impl DeltaScratch {
    /// Readies the scratch for a problem of this shape and starts a new
    /// epoch.
    fn begin(&mut self, edges: usize, tiles: usize, flat_hops: usize) {
        if self.moved_mark.len() < edges {
            self.moved_mark.resize(edges, 0);
            self.affected_mark.resize(edges, 0);
            self.new_path.resize(edges, 0);
            self.head_len.resize(edges, 0);
            self.new_noise.resize(edges, 0.0);
            self.new_snr.resize(edges, 0.0);
        }
        if self.tile_mark.len() < tiles {
            self.tile_mark.resize(tiles, 0);
            self.tile_slot.resize(tiles, 0);
        }
        if self.acc_mark.len() < flat_hops {
            self.acc_mark.resize(flat_hops, 0);
            self.acc_done.resize(flat_hops, 0);
            self.acc_new.resize(flat_hops, 0.0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale marks could collide, so reset them all.
            self.moved_mark.fill(0);
            self.affected_mark.fill(0);
            self.tile_mark.fill(0);
            self.acc_mark.fill(0);
            self.acc_done.fill(0);
            self.epoch = 1;
        }
        self.moved.clear();
        self.affected.clear();
        self.patched_tiles.clear();
        self.dirty_hops.clear();
    }

    fn is_moved(&self, e: usize) -> bool {
        self.moved_mark[e] == self.epoch
    }

    fn is_affected(&self, e: usize) -> bool {
        self.affected_mark[e] == self.epoch
    }

    fn mark_affected(&mut self, e: usize) {
        if self.affected_mark[e] != self.epoch {
            self.affected_mark[e] = self.epoch;
            self.affected.push(e);
        }
    }

    /// Index of `e` within the `moved` list (moved edges only).
    fn moved_slot(&self, e: usize) -> usize {
        self.moved
            .iter()
            .position(|&m| m == e)
            .expect("edge is moved")
    }

    /// Whether the occupancy `(e, h)` is removed by this move: `e`
    /// moved and `h` beyond the bitwise-shared head.
    fn occ_removed(&self, e: usize, h: usize) -> bool {
        self.moved_mark[e] == self.epoch && h >= self.head_len[e] as usize
    }

    fn slot_of(&self, tile: usize) -> usize {
        debug_assert_eq!(self.tile_mark[tile], self.epoch);
        self.tile_slot[tile] as usize
    }
}

impl Evaluator {
    /// Full evaluation that also builds the caches incremental scoring
    /// needs. The resulting metrics are identical to
    /// [`Evaluator::evaluate`].
    ///
    /// # Panics
    ///
    /// Panics if `mapping` does not match the topology (as
    /// [`Evaluator::evaluate`] does).
    #[must_use]
    pub fn init_state(&self, mapping: &Mapping) -> EvalState {
        assert_eq!(
            mapping.tile_count(),
            self.tile_count,
            "mapping built for a different topology"
        );
        let edges = self.edge_endpoints.len();
        let path_of_edge: Vec<usize> = self
            .edge_endpoints
            .iter()
            .map(|&(s, d)| {
                let st = mapping.tile_of_task(s).0;
                let dt = mapping.tile_of_task(d).0;
                st * self.tile_count + dt
            })
            .collect();
        let edge_paths: Vec<&PathInfo> = path_of_edge.iter().map(|&p| self.path(p)).collect();
        let mut hop_offset = Vec::with_capacity(edges + 1);
        let mut total_hops = 0usize;
        for path in &edge_paths {
            hop_offset.push(total_hops);
            total_hops += path.hops.len();
        }
        hop_offset.push(total_hops);

        // Same insertion order as the full pass: edge-major, then hop.
        let mut suffix = vec![0.0f64; total_hops];
        let mut tile_hops: Vec<Vec<Occ>> = vec![Vec::new(); self.tile_count];
        for (e, path) in edge_paths.iter().enumerate() {
            let (src, dst) = self.edge_endpoints[e];
            for (h, hop) in path.hops.iter().enumerate() {
                suffix[hop_offset[e] + h] = hop.suffix;
                tile_hops[hop.tile].push(Occ {
                    edge: e as u32,
                    hop: h as u32,
                    pair: hop.pair as u16,
                    src: src as u16,
                    dst: dst as u16,
                    prefix: hop.prefix,
                });
            }
        }

        // Same accumulation order as the full pass: tiles ascending,
        // victims and aggressors in list order.
        let mut acc_store = vec![0.0f64; total_hops];
        let mut noise = vec![0.0f64; edges];
        for hops_here in &tile_hops {
            if hops_here.len() < 2 {
                continue;
            }
            for occ in hops_here {
                let (ve, vh) = (occ.edge as usize, occ.hop as usize);
                let acc = self.aggressor_sum(ve, occ.pair, hops_here);
                let flat = hop_offset[ve] + vh;
                acc_store[flat] = acc;
                noise[ve] += acc * suffix[flat];
            }
        }

        let mut il = Vec::with_capacity(edges);
        let mut snr = Vec::with_capacity(edges);
        let mut worst_il = 0.0f64;
        let mut worst_snr = f64::INFINITY;
        for (e, path) in edge_paths.iter().enumerate() {
            let edge_il = path.total_db;
            let edge_snr = self.snr_of(path.total_gain, noise[e]);
            worst_il = worst_il.min(edge_il);
            worst_snr = worst_snr.min(edge_snr);
            il.push(edge_il);
            snr.push(edge_snr);
        }
        if edges == 0 {
            worst_snr = self.snr_ceiling.0;
        }
        EvalState {
            path_of_edge,
            hop_offset,
            acc: acc_store,
            suffix,
            noise,
            il,
            snr,
            tile_hops,
            worst_il,
            worst_snr,
        }
    }

    pub(super) fn path(&self, idx: usize) -> &PathInfo {
        self.paths[idx]
            .as_ref()
            .expect("distinct tasks map to distinct tiles")
    }

    /// Per-edge SNR from total path gain and accumulated noise, matching
    /// the full pass formula (ceiling when noise-free, clamped).
    pub(super) fn snr_of(&self, total_gain: f64, noise: f64) -> f64 {
        let snr = if noise > 0.0 {
            10.0 * (total_gain / noise).log10()
        } else {
            self.snr_ceiling.0
        };
        snr.min(self.snr_ceiling.0)
    }

    /// Whether aggressor edge `ae` (port pair `a_pair`) contributes
    /// noise to victim edge `ve` (port pair `v_pair`) at a shared router
    /// — the full pass's exclusion rules plus the zero-gain skip.
    fn interacts(&self, ve: usize, v_pair: u16, ae: usize, a_pair: u16) -> bool {
        if ae == ve {
            return false;
        }
        let (v_src, v_dst) = self.edge_endpoints[ve];
        let (a_src, a_dst) = self.edge_endpoints[ae];
        if self.options.exclude_same_source && a_src == v_src {
            return false;
        }
        if self.options.exclude_same_destination && a_dst == v_dst {
            return false;
        }
        self.coupled[v_pair as usize][a_pair as usize]
    }

    /// One router's aggressor accumulation for victim edge `ve` (hop
    /// port pair `v_pair`), iterating `hops_here` in list order — the
    /// shared inner loop of the full and incremental passes. Entries
    /// carry pair and prefix inline, so no path lookups happen here.
    ///
    /// Branch-free: excluded entries contribute an exact `+0.0` via a
    /// multiply-select, which is bit-identical to skipping them (all
    /// terms are non-negative, so `acc + 0.0 == acc` to the bit). The
    /// exclusion tests run entirely on the entries' inline endpoint
    /// fields — no lookups leave the occupancy list.
    pub(super) fn aggressor_sum(&self, ve: usize, v_pair: u16, hops_here: &[Occ]) -> f64 {
        let (v_src, v_dst) = self.edge_endpoints[ve];
        self.aggressor_sum_packed(ve as u32, v_pair, v_src as u16, v_dst as u16, hops_here)
    }

    /// [`Evaluator::aggressor_sum`] with the victim's identity already
    /// packed — the form the scratch-reusing full pass uses, where the
    /// victim's own occupancy entry carries everything needed. The
    /// default exclusion configuration (same-source only) gets a
    /// specialized loop; both compute the identical ordered sum.
    #[inline]
    pub(super) fn aggressor_sum_packed(
        &self,
        ve: u32,
        v_pair: u16,
        v_src: u16,
        v_dst: u16,
        hops_here: &[Occ],
    ) -> f64 {
        let row = &self.interaction[v_pair as usize];
        let ex_src = self.options.exclude_same_source;
        let ex_dst = self.options.exclude_same_destination;
        let mut acc = 0.0;
        if ex_src & !ex_dst {
            for occ in hops_here {
                let excluded = (occ.edge == ve) | (occ.src == v_src);
                let select = f64::from(u8::from(!excluded));
                acc += occ.prefix * row[occ.pair as usize] * select;
            }
        } else {
            for occ in hops_here {
                let excluded = (occ.edge == ve)
                    | (ex_src & (occ.src == v_src))
                    | (ex_dst & (occ.dst == v_dst));
                let select = f64::from(u8::from(!excluded));
                acc += occ.prefix * row[occ.pair as usize] * select;
            }
        }
        acc
    }

    /// Number of communications whose network paths `mv` would change —
    /// the edges incident to the task(s) the move displaces. This is the
    /// input of [`PeekCostModel::prefers_full`], computed in `O(deg)`
    /// from the task→edges index (no evaluation work), so a hybrid peek
    /// can route each move to the cheaper evaluation path before paying
    /// for either.
    ///
    /// # Panics
    ///
    /// Panics if the move is out of range for `mapping` (see
    /// [`Move::positions`]).
    #[must_use]
    pub fn moved_edge_count(&self, mapping: &Mapping, mv: Move) -> usize {
        let tasks = mapping.task_count();
        let (a, b) = mv.positions(mapping);
        if a == b || a >= tasks {
            return 0;
        }
        let ea = &self.task_edges[a];
        if b >= tasks {
            return ea.len();
        }
        let eb = &self.task_edges[b];
        // Edges joining the two moved tasks would be double-counted;
        // both lists are ascending and tiny (task degrees).
        let shared = ea.iter().filter(|e| eb.binary_search(e).is_ok()).count();
        ea.len() + eb.len() - shared
    }

    /// Incrementally scores `mv` against `state` (which must describe
    /// `mapping`) without committing anything. Allocates a fresh
    /// [`DeltaScratch`]; hot paths should hold one and call
    /// [`Evaluator::evaluate_delta_with`].
    ///
    /// # Panics
    ///
    /// Panics if the move is out of range for `mapping` (see
    /// [`Move::positions`]).
    #[must_use]
    pub fn evaluate_delta(&self, state: &EvalState, mapping: &Mapping, mv: Move) -> ScoreDelta {
        let mut scratch = DeltaScratch::default();
        self.evaluate_delta_with(state, mapping, mv, &mut scratch)
    }

    /// [`Evaluator::evaluate_delta`] with caller-provided buffers.
    ///
    /// # Panics
    ///
    /// Panics if the move is out of range for `mapping`.
    #[must_use]
    pub fn evaluate_delta_with(
        &self,
        state: &EvalState,
        mapping: &Mapping,
        mv: Move,
        scratch: &mut DeltaScratch,
    ) -> ScoreDelta {
        let (new_worst_il, new_worst_snr) = self.compute_delta(state, mapping, mv, scratch, false);
        ScoreDelta {
            old_worst_il: Db(state.worst_il),
            old_worst_snr: Db(state.worst_snr),
            new_worst_il: Db(new_worst_il),
            new_worst_snr: Db(new_worst_snr),
            affected_edges: scratch.affected.len(),
        }
    }

    /// Loss-objective fast path: the new worst-case insertion loss
    /// after `mv`, plus the number of moved edges (the delta's honest
    /// cost). Insertion loss depends only on each edge's own path —
    /// no crosstalk recomputation is involved — so this runs in
    /// `O(moved + edges)` with a handful of table lookups and is one
    /// to two orders of magnitude cheaper than a full evaluation.
    ///
    /// The returned loss is bit-identical to
    /// `evaluate(mapping.with_move(mv)).worst_case_il`.
    ///
    /// # Panics
    ///
    /// Panics if the move is out of range for `mapping`.
    #[must_use]
    pub fn evaluate_delta_loss(
        &self,
        state: &EvalState,
        mapping: &Mapping,
        mv: Move,
        scratch: &mut DeltaScratch,
    ) -> (Db, usize) {
        let edges = self.edge_endpoints.len();
        let tasks = mapping.task_count();
        scratch.begin(edges, self.tile_count, state.acc.len());

        let (a, b) = mv.positions(mapping);
        if a == b || a >= tasks || edges == 0 {
            return (Db(state.worst_il), 0);
        }
        let perm = mapping.permutation();
        let task_b = if b < tasks { Some(b) } else { None };
        let new_tile = |task: usize| -> usize {
            if task == a {
                perm[b].0
            } else if Some(task) == task_b {
                perm[a].0
            } else {
                perm[task].0
            }
        };
        for &t in [Some(a), task_b].iter().flatten() {
            for &e in &self.task_edges[t] {
                if scratch.moved_mark[e] != scratch.epoch {
                    scratch.moved_mark[e] = scratch.epoch;
                    scratch.moved.push(e);
                    let (s, d) = self.edge_endpoints[e];
                    scratch.new_path[e] = new_tile(s) * self.tile_count + new_tile(d);
                }
            }
        }
        let mut worst_il = 0.0f64;
        for e in 0..edges {
            let il = if scratch.is_moved(e) {
                self.path(scratch.new_path[e]).total_db
            } else {
                state.il[e]
            };
            worst_il = worst_il.min(il);
        }
        (Db(worst_il), scratch.moved.len())
    }

    /// Scores a batch of candidate moves in parallel (the R-PBLA
    /// admitted-list scan). Results are in input order; each worker
    /// reuses its sticky [`DeltaScratch`] slot, so the outcome is
    /// deterministic and bit-identical to a sequential loop.
    #[must_use]
    pub fn evaluate_delta_batch(
        &self,
        state: &EvalState,
        mapping: &Mapping,
        moves: &[Move],
    ) -> Vec<ScoreDelta> {
        parallel::parallel_map_with(moves, DeltaScratch::default, |scratch, &mv| {
            self.evaluate_delta_with(state, mapping, mv, scratch)
        })
    }

    /// Loss-objective fast path over a batch of moves (the IL-only
    /// admitted-list scan). Results are in input order; each worker
    /// reuses its sticky scratch slot, so the outcome is deterministic
    /// and bit-identical to a sequential
    /// [`Evaluator::evaluate_delta_loss`] loop.
    #[must_use]
    pub fn evaluate_delta_loss_batch(
        &self,
        state: &EvalState,
        mapping: &Mapping,
        moves: &[Move],
    ) -> Vec<(Db, usize)> {
        parallel::parallel_map_with(moves, DeltaScratch::default, |scratch, &mv| {
            self.evaluate_delta_loss(state, mapping, mv, scratch)
        })
    }

    /// Bound-then-verify loss peek: scores `mv` only as far as needed to
    /// decide whether its new worst-case insertion loss can exceed
    /// `threshold` — the loss-family analogue of
    /// [`Evaluator::evaluate_delta_bounded`], used by the laser-power
    /// objective's improving-only scans.
    ///
    /// Insertion loss is per-edge (no coupling), so the new worst case
    /// is `min(min over moved edges of their new IL, min over unmoved
    /// edges of their old IL)`. Two admissible upper bounds reject most
    /// non-improving moves after the `O(moved)` marking pass alone,
    /// skipping the exhaustive `O(edges)` scan:
    ///
    /// 1. **Moved-minimum bound** — the new worst case cannot exceed
    ///    the minimum new IL over the moved edges;
    /// 2. **Structural bound** — when no moved edge carries the current
    ///    worst-case loss, the (unchanged) worst edge still bounds the
    ///    new worst case at `state.worst_il`; with the threshold at the
    ///    cursor score this rejects every move that does not touch the
    ///    worst edge.
    ///
    /// If neither bound fires, the returned
    /// [`BoundedLossDelta::Exact`] is bit-identical to
    /// [`Evaluator::evaluate_delta_loss`] — accepted moves always carry
    /// exact scores, so greedy selection over bounded peeks matches
    /// selection over exact peeks.
    ///
    /// # Panics
    ///
    /// Panics if the move is out of range for `mapping`.
    #[must_use]
    pub fn evaluate_delta_loss_bounded(
        &self,
        state: &EvalState,
        mapping: &Mapping,
        mv: Move,
        scratch: &mut DeltaScratch,
        threshold: Db,
    ) -> BoundedLossDelta {
        let edges = self.edge_endpoints.len();
        let tasks = mapping.task_count();
        scratch.begin(edges, self.tile_count, state.acc.len());

        let (a, b) = mv.positions(mapping);
        if a == b || a >= tasks || edges == 0 {
            // Neutral move: the exact value is free.
            return BoundedLossDelta::Exact {
                new_worst_il: Db(state.worst_il),
                moved_edges: 0,
            };
        }
        let perm = mapping.permutation();
        let task_b = if b < tasks { Some(b) } else { None };
        let new_tile = |task: usize| -> usize {
            if task == a {
                perm[b].0
            } else if Some(task) == task_b {
                perm[a].0
            } else {
                perm[task].0
            }
        };
        for &t in [Some(a), task_b].iter().flatten() {
            for &e in &self.task_edges[t] {
                if scratch.moved_mark[e] != scratch.epoch {
                    scratch.moved_mark[e] = scratch.epoch;
                    scratch.moved.push(e);
                    let (s, d) = self.edge_endpoints[e];
                    scratch.new_path[e] = new_tile(s) * self.tile_count + new_tile(d);
                }
            }
        }
        // Admissible bound, O(moved): the new worst case is at most the
        // minimum new IL over moved edges, and — when the current worst
        // edge is untouched — at most the (unchanged) old worst case.
        let mut bound = f64::INFINITY;
        let mut worst_edge_moved = false;
        for &e in &scratch.moved {
            bound = bound.min(self.path(scratch.new_path[e]).total_db);
            if state.il[e] <= state.worst_il {
                worst_edge_moved = true;
            }
        }
        if !worst_edge_moved {
            bound = bound.min(state.worst_il);
        }
        if bound <= threshold.0 {
            return BoundedLossDelta::Rejected {
                bound: Db(bound),
                cost: scratch.moved.len(),
            };
        }
        // Verify: the exhaustive scan, with the same expressions as
        // `evaluate_delta_loss` (bit-identical exact value).
        let mut worst_il = 0.0f64;
        for e in 0..edges {
            let il = if scratch.is_moved(e) {
                self.path(scratch.new_path[e]).total_db
            } else {
                state.il[e]
            };
            worst_il = worst_il.min(il);
        }
        BoundedLossDelta::Exact {
            new_worst_il: Db(worst_il),
            moved_edges: scratch.moved.len(),
        }
    }

    /// [`Evaluator::evaluate_delta_loss_bounded`] over a batch of moves,
    /// all tested against the same threshold, in parallel. Results are
    /// in input order; each worker reuses its sticky scratch slot, so
    /// the outcome is deterministic and identical to a sequential loop.
    #[must_use]
    pub fn evaluate_delta_loss_bounded_batch(
        &self,
        state: &EvalState,
        mapping: &Mapping,
        moves: &[Move],
        threshold: Db,
    ) -> Vec<BoundedLossDelta> {
        parallel::parallel_map_with(moves, DeltaScratch::default, |scratch, &mv| {
            self.evaluate_delta_loss_bounded(state, mapping, mv, scratch, threshold)
        })
    }

    /// Bound-then-verify SNR peek: scores `mv` only as far as needed to
    /// decide whether its new worst-case SNR can exceed `threshold`.
    ///
    /// Crosstalk can only *hurt* SNR, so two admissible upper bounds
    /// reject most non-improving moves long before the full delta:
    ///
    /// 1. **Structural bound** — the new worst case cannot exceed the
    ///    (unchanged) minimum SNR over unaffected edges; when the
    ///    current worst edge is not touched by the move, this rejects
    ///    after the marking pass alone, with zero noise recomputation.
    /// 2. **Running verify bound** — otherwise affected victims are
    ///    recomputed exactly, one at a time with *lazy* dirty-hop
    ///    accumulation, and the peek exits as soon as the running
    ///    minimum drops to the threshold (the minimum only decreases,
    ///    so rejection is sound).
    ///
    /// If no bound fires, the returned [`BoundedDelta::Exact`] is
    /// bit-identical to [`Evaluator::evaluate_delta`] — accepted moves
    /// always carry exact scores. This is what breaks the dense-
    /// placement parity ceiling: on a random VOPD/4×4 placement a swap
    /// couples into ~¾ of all communications, so the exact delta sits
    /// at parity with full evaluation, but most candidate moves cannot
    /// beat the incumbent and are rejected at a fraction of that cost.
    ///
    /// # Panics
    ///
    /// Panics if the move is out of range for `mapping`.
    #[must_use]
    pub fn evaluate_delta_bounded(
        &self,
        state: &EvalState,
        mapping: &Mapping,
        mv: Move,
        scratch: &mut DeltaScratch,
        threshold: Db,
    ) -> BoundedDelta {
        if !self.delta_collect_moved(state, mapping, mv, scratch) {
            // Neutral move: the exact delta is free.
            return BoundedDelta::Exact(ScoreDelta {
                old_worst_il: Db(state.worst_il),
                old_worst_snr: Db(state.worst_snr),
                new_worst_il: Db(state.worst_il),
                new_worst_snr: Db(state.worst_snr),
                affected_edges: 0,
            });
        }
        self.delta_patch_and_mark(state, scratch);

        let (worst_il, unaffected_snr) = self.delta_scan_il_and_unaffected_snr(state, scratch);
        if unaffected_snr <= threshold.0 {
            return BoundedDelta::Rejected {
                bound: Db(unaffected_snr),
                cost: 0,
            };
        }

        // Verify: exact per-victim SNRs (dirty accumulations computed
        // lazily, each at most once), tracking the affected minimum in
        // the linear ratio domain exactly like the peek path — one
        // `log10` per *decrease* of the minimum, at which point the
        // early-exit test runs.
        let mut min_ratio = f64::INFINITY;
        let mut any_noise_free = false;
        for i in 0..scratch.affected.len() {
            let v = scratch.affected[i];
            let (noise, gain) = self.lazy_victim_noise(state, scratch, v);
            scratch.new_noise[v] = noise;
            if noise > 0.0 {
                let ratio = gain / noise;
                if ratio < min_ratio {
                    min_ratio = ratio;
                    let affected_snr = (10.0 * min_ratio.log10()).min(self.snr_ceiling.0);
                    if affected_snr <= threshold.0 {
                        return BoundedDelta::Rejected {
                            bound: Db(unaffected_snr.min(affected_snr)),
                            cost: i + 1,
                        };
                    }
                }
            } else {
                any_noise_free = true;
            }
        }

        // Survived every bound: assemble the exact worst cases with the
        // same expressions as the exact peek path.
        let affected_snr = if min_ratio.is_finite() {
            (10.0 * min_ratio.log10()).min(self.snr_ceiling.0)
        } else if any_noise_free {
            self.snr_ceiling.0
        } else {
            f64::INFINITY
        };
        let worst_snr = unaffected_snr.min(affected_snr);
        debug_assert_eq!(
            worst_snr,
            self.canonical_worst_snr(state, scratch),
            "bounded verify diverged from the canonical scan"
        );
        BoundedDelta::Exact(ScoreDelta {
            old_worst_il: Db(state.worst_il),
            old_worst_snr: Db(state.worst_snr),
            new_worst_il: Db(worst_il),
            new_worst_snr: Db(worst_snr),
            affected_edges: scratch.affected.len(),
        })
    }

    /// [`Evaluator::evaluate_delta_bounded`] over a batch of moves, all
    /// tested against the same threshold, in parallel. Results are in
    /// input order; each worker reuses its sticky scratch slot, so the
    /// outcome is deterministic and identical to a sequential loop.
    #[must_use]
    pub fn evaluate_delta_bounded_batch(
        &self,
        state: &EvalState,
        mapping: &Mapping,
        moves: &[Move],
        threshold: Db,
    ) -> Vec<BoundedDelta> {
        parallel::parallel_map_with(moves, DeltaScratch::default, |scratch, &mv| {
            self.evaluate_delta_bounded(state, mapping, mv, scratch, threshold)
        })
    }

    /// Memoized lazy accumulation for kept hop `flat` of victim `v`:
    /// hops marked dirty are recomputed (at most once per epoch)
    /// against the patched list at `tile`; clean hops read the cached
    /// state — exactly the values the eager recompute pass produces.
    fn lazy_acc(
        &self,
        state: &EvalState,
        scratch: &mut DeltaScratch,
        flat: usize,
        v: usize,
        pair: u16,
        tile: usize,
    ) -> f64 {
        if scratch.acc_mark[flat] != scratch.epoch {
            return state.acc[flat];
        }
        if scratch.acc_done[flat] != scratch.epoch {
            let slot = scratch.slot_of(tile);
            let acc = self.aggressor_sum(v, pair, &scratch.patched_lists[slot]);
            scratch.acc_new[flat] = acc;
            scratch.acc_done[flat] = scratch.epoch;
        }
        scratch.acc_new[flat]
    }

    /// Exact `(noise, total gain)` of affected victim `v` against the
    /// patched occupancies, computing dirty accumulations on demand —
    /// the lazy twin of the eager resum, summing in the same canonical
    /// tile order with the same terms (bit-identical by construction).
    fn lazy_victim_noise(
        &self,
        state: &EvalState,
        scratch: &mut DeltaScratch,
        v: usize,
    ) -> (f64, f64) {
        let base = state.hop_offset[v];
        if scratch.is_moved(v) {
            let head = scratch.head_len[v] as usize;
            let path = self.path(scratch.new_path[v]);
            let mut noise = 0.0f64;
            for &h in &path.tile_order {
                let h = h as usize;
                let hop = path.hops[h];
                let acc = if h < head {
                    // Shared-head hops are entrywise identical to the
                    // old path, so the cached flat layout still applies.
                    self.lazy_acc(state, scratch, base + h, v, hop.pair as u16, hop.tile)
                } else {
                    let slot = scratch.slot_of(hop.tile);
                    let hops_here = &scratch.patched_lists[slot];
                    if hops_here.len() >= 2 {
                        self.aggressor_sum(v, hop.pair as u16, hops_here)
                    } else {
                        0.0
                    }
                };
                noise += acc * hop.suffix;
            }
            (noise, path.total_gain)
        } else {
            let path = self.path(state.path_of_edge[v]);
            let mut noise = 0.0f64;
            for &h in &path.tile_order {
                let h = h as usize;
                let hop = path.hops[h];
                let acc = self.lazy_acc(state, scratch, base + h, v, hop.pair as u16, hop.tile);
                noise += acc * state.suffix[base + h];
            }
            (noise, path.total_gain)
        }
    }

    /// Evaluates many independent mappings in parallel (population
    /// strategies, random sweeps). Results are in input order and
    /// identical to calling [`Evaluator::evaluate`] per mapping; each
    /// worker reuses the [`EvalScratch`] in its sticky slot, so only
    /// the returned [`NetworkMetrics`] are allocated.
    #[must_use]
    pub fn evaluate_batch(&self, mappings: &[Mapping]) -> Vec<NetworkMetrics> {
        parallel::parallel_map_with(mappings, EvalScratch::default, |scratch, m| {
            self.evaluate_into(m, None, scratch);
            scratch.to_metrics()
        })
    }

    /// Worst-cases-only parallel batch — the form search loops consume.
    /// Same ordering and determinism guarantees as
    /// [`Evaluator::evaluate_batch`], with **zero** per-mapping
    /// allocation (sticky worker scratches are reused across chunks
    /// and across batch calls).
    #[must_use]
    pub fn evaluate_summaries_batch(&self, mappings: &[Mapping]) -> Vec<EvalSummary> {
        parallel::parallel_map_with(mappings, EvalScratch::default, |scratch, m| {
            self.evaluate_into(m, None, scratch)
        })
    }

    /// Commits `mv`: updates `mapping`, and patches `state`'s caches so
    /// they are bit-identical to a fresh [`Evaluator::init_state`] of
    /// the moved mapping (debug-asserted). Returns the delta that was
    /// applied.
    ///
    /// # Panics
    ///
    /// Panics if the move is out of range for `mapping`.
    pub fn apply_move(
        &self,
        state: &mut EvalState,
        mapping: &mut Mapping,
        mv: Move,
        scratch: &mut DeltaScratch,
    ) -> ScoreDelta {
        let (new_worst_il, new_worst_snr) = self.compute_delta(state, mapping, mv, scratch, true);
        let delta = ScoreDelta {
            old_worst_il: Db(state.worst_il),
            old_worst_snr: Db(state.worst_snr),
            new_worst_il: Db(new_worst_il),
            new_worst_snr: Db(new_worst_snr),
            affected_edges: scratch.affected.len(),
        };

        if !scratch.moved.is_empty() {
            // Patched tile occupancies.
            for (slot, &tile) in scratch.patched_tiles.iter().enumerate() {
                state.tile_hops[tile].clear();
                state.tile_hops[tile].extend_from_slice(&scratch.patched_lists[slot]);
            }
            // Path lengths may change, so the flat per-hop stores are
            // rebuilt (edge count is tiny). The assembly reads the *old*
            // layout, so `path_of_edge`/`hop_offset` are replaced after.
            let edges = state.noise.len();
            let mut new_offset = Vec::with_capacity(edges + 1);
            let mut total = 0usize;
            for e in 0..edges {
                new_offset.push(total);
                let p = if scratch.is_moved(e) {
                    scratch.new_path[e]
                } else {
                    state.path_of_edge[e]
                };
                total += self.path(p).hops.len();
            }
            new_offset.push(total);
            let mut new_acc = vec![0.0f64; total];
            let mut new_suffix = vec![0.0f64; total];
            for e in 0..edges {
                let dst = new_offset[e];
                let n = new_offset[e + 1] - dst;
                if scratch.is_moved(e) {
                    let vals = &scratch.moved_acc[scratch.moved_slot(e)];
                    new_acc[dst..dst + n].copy_from_slice(vals);
                    for (h, hop) in self.path(scratch.new_path[e]).hops.iter().enumerate() {
                        new_suffix[dst + h] = hop.suffix;
                    }
                } else {
                    let src = state.hop_offset[e];
                    for h in 0..n {
                        let flat = src + h;
                        new_suffix[dst + h] = state.suffix[flat];
                        new_acc[dst + h] = if scratch.acc_mark[flat] == scratch.epoch {
                            scratch.acc_new[flat]
                        } else {
                            state.acc[flat]
                        };
                    }
                }
            }
            for &e in &scratch.moved {
                let p = scratch.new_path[e];
                state.path_of_edge[e] = p;
                state.il[e] = self.path(p).total_db;
            }
            state.hop_offset = new_offset;
            state.acc = new_acc;
            state.suffix = new_suffix;
            // Recomputed victims.
            for &v in &scratch.affected {
                state.noise[v] = scratch.new_noise[v];
                state.snr[v] = scratch.new_snr[v];
            }
        }
        state.worst_il = new_worst_il;
        state.worst_snr = new_worst_snr;
        mapping.apply_move(mv);

        debug_assert!(
            self.state_matches_full_eval(state, mapping),
            "incremental state diverged from full evaluation after {mv:?}"
        );
        delta
    }

    /// Debug-only invariant: `state` is bit-identical to a fresh full
    /// evaluation of `mapping`.
    fn state_matches_full_eval(&self, state: &EvalState, mapping: &Mapping) -> bool {
        let fresh = self.init_state(mapping);
        state.path_of_edge == fresh.path_of_edge
            && state.hop_offset == fresh.hop_offset
            && state.acc == fresh.acc
            && state.suffix == fresh.suffix
            && state.noise == fresh.noise
            && state.il == fresh.il
            && state.snr == fresh.snr
            && state.tile_hops == fresh.tile_hops
            && state.worst_il == fresh.worst_il
            && state.worst_snr == fresh.worst_snr
            && self.evaluate(mapping) == state.to_metrics()
    }

    /// Phase 1 of a delta: starts a scratch epoch and collects the
    /// moved edges — new path index + bitwise-shared head length (XY
    /// routes with an unmoved source often keep their leading hops
    /// — identical tile, pair and prefix — which then need no
    /// patching at all). Returns `false` for neutral moves (free↔free
    /// or identity), where nothing changes.
    fn delta_collect_moved(
        &self,
        state: &EvalState,
        mapping: &Mapping,
        mv: Move,
        scratch: &mut DeltaScratch,
    ) -> bool {
        let edges = self.edge_endpoints.len();
        let tasks = mapping.task_count();
        scratch.begin(edges, self.tile_count, state.acc.len());

        let (a, b) = mv.positions(mapping);
        if a == b || a >= tasks || edges == 0 {
            return false;
        }

        // Tasks that change tiles, and the tile each task sits on after
        // the move.
        let perm = mapping.permutation();
        let task_a = a; // a < tasks checked above
        let task_b = if b < tasks { Some(b) } else { None };
        let new_tile = |task: usize| -> usize {
            if task == task_a {
                perm[b].0
            } else if Some(task) == task_b {
                perm[a].0
            } else {
                perm[task].0
            }
        };

        for &t in [Some(task_a), task_b].iter().flatten() {
            for &e in &self.task_edges[t] {
                if scratch.moved_mark[e] != scratch.epoch {
                    scratch.moved_mark[e] = scratch.epoch;
                    scratch.moved.push(e);
                    scratch.mark_affected(e);
                    let (s, d) = self.edge_endpoints[e];
                    let new_idx = new_tile(s) * self.tile_count + new_tile(d);
                    scratch.new_path[e] = new_idx;
                    let old_hops = &self.path(state.path_of_edge[e]).hops;
                    let new_hops = &self.path(new_idx).hops;
                    let mut head = 0usize;
                    let max = old_hops.len().min(new_hops.len());
                    while head < max {
                        let (o, n) = (&old_hops[head], &new_hops[head]);
                        if o.tile != n.tile
                            || o.pair != n.pair
                            || o.prefix.to_bits() != n.prefix.to_bits()
                        {
                            break;
                        }
                        head += 1;
                    }
                    scratch.head_len[e] = head as u32;
                }
            }
        }
        true
    }

    /// Phase 2 of a delta: patches the occupancy lists of every tile a
    /// moved edge really changes, and marks the kept victim hops some
    /// changed occupancy couples into (filling `dirty_hops` and the
    /// affected set).
    fn delta_patch_and_mark(&self, state: &EvalState, scratch: &mut DeltaScratch) {
        // Patch every tile that really changes: old-path hops beyond the
        // shared head are removals, new-path hops beyond it are
        // insertions.
        for i in 0..scratch.moved.len() {
            let e = scratch.moved[i];
            let (src, dst) = self.edge_endpoints[e];
            let head = scratch.head_len[e] as usize;
            for hop in &self.path(state.path_of_edge[e]).hops[head..] {
                self.touch_tile(state, scratch, hop.tile);
                let slot = scratch.slot_of(hop.tile);
                scratch.changed_occs[slot].push((e as u32, hop.pair as u16));
            }
            let new_path = self.path(scratch.new_path[e]);
            for (off, hop) in new_path.hops[head..].iter().enumerate() {
                self.touch_tile(state, scratch, hop.tile);
                let slot = scratch.slot_of(hop.tile);
                scratch.changed_occs[slot].push((e as u32, hop.pair as u16));
                scratch.patched_lists[slot].push(Occ {
                    edge: e as u32,
                    hop: (head + off) as u32,
                    pair: hop.pair as u16,
                    src: src as u16,
                    dst: dst as u16,
                    prefix: hop.prefix,
                });
            }
        }
        // One marking pass per patched tile: queue every kept victim
        // hop that some changed occupancy couples into, then restore the
        // canonical (edge, hop) order of the patched list.
        for si in 0..scratch.patched_tiles.len() {
            let tile = scratch.patched_tiles[si];
            for oi in 0..state.tile_hops[tile].len() {
                let occ = state.tile_hops[tile][oi];
                let v = occ.edge as usize;
                if scratch.occ_removed(v, occ.hop as usize) {
                    continue; // removed occupancies are not victims here
                }
                let coupled = (0..scratch.changed_occs[si].len()).any(|ci| {
                    let (ae, a_pair) = scratch.changed_occs[si][ci];
                    self.interacts(v, occ.pair, ae as usize, a_pair)
                });
                if !coupled {
                    continue;
                }
                let flat = state.hop_offset[v] + occ.hop as usize;
                if scratch.acc_mark[flat] != scratch.epoch {
                    scratch.acc_mark[flat] = scratch.epoch;
                    scratch
                        .dirty_hops
                        .push((occ.edge, occ.hop, tile as u32, occ.pair));
                    if scratch.moved_mark[v] != scratch.epoch {
                        scratch.mark_affected(v);
                    }
                }
            }
            // Removal-only tiles are already in order (filtering keeps
            // it); only sort when insertions disturbed it.
            let list = &mut scratch.patched_lists[si];
            if !list.is_sorted_by_key(|o| (o.edge, o.hop)) {
                list.sort_unstable_by_key(|o| (o.edge, o.hop));
            }
        }
    }

    /// Worst-IL min-scan plus the minimum SNR over *unaffected* edges —
    /// the structural part every delta (exact or bounded) needs.
    fn delta_scan_il_and_unaffected_snr(
        &self,
        state: &EvalState,
        scratch: &DeltaScratch,
    ) -> (f64, f64) {
        let edges = self.edge_endpoints.len();
        let mut worst_il = 0.0f64;
        let mut unaffected_snr = f64::INFINITY;
        for e in 0..edges {
            let il = if scratch.is_moved(e) {
                self.path(scratch.new_path[e]).total_db
            } else {
                state.il[e]
            };
            worst_il = worst_il.min(il);
            if !scratch.is_affected(e) {
                unaffected_snr = unaffected_snr.min(state.snr[e]);
            }
        }
        (worst_il, unaffected_snr)
    }

    /// The shared peek/commit computation: fills `scratch` with the
    /// moved-edge set, patched tile lists and recomputed victims
    /// (composing the phase helpers above), and returns the new worst
    /// cases. The commit path additionally caches every affected
    /// victim's SNR; the peek path derives the worst SNR with a single
    /// `log10`.
    fn compute_delta(
        &self,
        state: &EvalState,
        mapping: &Mapping,
        mv: Move,
        scratch: &mut DeltaScratch,
        commit: bool,
    ) -> (f64, f64) {
        if !self.delta_collect_moved(state, mapping, mv, scratch) {
            // Neutral move (free↔free or identity): nothing changes.
            return (state.worst_il, state.worst_snr);
        }
        self.delta_patch_and_mark(state, scratch);

        // Recompute the dirty kept hops against the patched occupancies.
        // (These may include shared-head hops of moved edges whose tile
        // was perturbed by another moved edge.)
        for i in 0..scratch.dirty_hops.len() {
            let (v, vh, tile, pair) = scratch.dirty_hops[i];
            let slot = scratch.slot_of(tile as usize);
            let acc = self.aggressor_sum(v as usize, pair, &scratch.patched_lists[slot]);
            scratch.acc_new[state.hop_offset[v as usize] + vh as usize] = acc;
        }
        // Moved victims: assemble accumulations along the new path —
        // cached (or freshly marked) values for the shared head,
        // recomputed beyond it.
        for i in 0..scratch.moved.len() {
            let e = scratch.moved[i];
            let head = scratch.head_len[e] as usize;
            let path = self.path(scratch.new_path[e]);
            while scratch.moved_acc.len() <= i {
                scratch.moved_acc.push(Vec::new());
            }
            let mut vals = std::mem::take(&mut scratch.moved_acc[i]);
            vals.clear();
            vals.resize(path.hops.len(), 0.0);
            let base = state.hop_offset[e];
            for (h, slot_val) in vals.iter_mut().enumerate().take(head) {
                let flat = base + h;
                *slot_val = if scratch.acc_mark[flat] == scratch.epoch {
                    scratch.acc_new[flat]
                } else {
                    state.acc[flat]
                };
            }
            for (off, hop) in path.hops[head..].iter().enumerate() {
                let slot = scratch.slot_of(hop.tile);
                let hops_here = &scratch.patched_lists[slot];
                if hops_here.len() >= 2 {
                    vals[head + off] = self.aggressor_sum(e, hop.pair as u16, hops_here);
                }
            }
            scratch.moved_acc[i] = vals;
        }

        // Noise re-sums for every affected victim, in canonical tile
        // order. The peek path tracks the affected minimum in the linear
        // ratio domain (one log10 at the end); the commit path caches
        // every affected SNR.
        let mut min_ratio = f64::INFINITY; // min over gain/noise, noise > 0
        let mut any_noise_free = false;
        for i in 0..scratch.affected.len() {
            let v = scratch.affected[i];
            let (noise, gain) = if scratch.is_moved(v) {
                let path = self.path(scratch.new_path[v]);
                let vals = &scratch.moved_acc[scratch.moved_slot(v)];
                let mut noise = 0.0f64;
                for &h in &path.tile_order {
                    noise += vals[h as usize] * path.hops[h as usize].suffix;
                }
                (noise, path.total_gain)
            } else {
                let path = self.path(state.path_of_edge[v]);
                let base = state.hop_offset[v];
                let mut noise = 0.0f64;
                for &h in &path.tile_order {
                    let flat = base + h as usize;
                    let acc = if scratch.acc_mark[flat] == scratch.epoch {
                        scratch.acc_new[flat]
                    } else {
                        state.acc[flat]
                    };
                    noise += acc * state.suffix[flat];
                }
                (noise, path.total_gain)
            };
            scratch.new_noise[v] = noise;
            if commit {
                scratch.new_snr[v] = self.snr_of(gain, noise);
            } else if noise > 0.0 {
                min_ratio = min_ratio.min(gain / noise);
            } else {
                any_noise_free = true;
            }
        }

        // Worst-case min-scans over cached + recomputed per-edge values.
        let (worst_il, unaffected_snr) = self.delta_scan_il_and_unaffected_snr(state, scratch);
        let worst_snr = if commit {
            let mut worst = unaffected_snr;
            for &v in &scratch.affected {
                worst = worst.min(scratch.new_snr[v]);
            }
            worst
        } else {
            // `snr_of` is monotone non-decreasing in gain/noise (log10
            // is monotone), so the minimum affected SNR is attained at
            // the minimum ratio; noise-free victims sit at the ceiling.
            let affected_snr = if min_ratio.is_finite() {
                (10.0 * min_ratio.log10()).min(self.snr_ceiling.0)
            } else if any_noise_free {
                self.snr_ceiling.0
            } else {
                f64::INFINITY
            };
            let worst = unaffected_snr.min(affected_snr);
            debug_assert_eq!(
                worst,
                self.canonical_worst_snr(state, scratch),
                "ratio-domain SNR selection diverged from the canonical scan"
            );
            worst
        };
        (worst_il, worst_snr)
    }

    /// Debug-only reference: the worst SNR computed edge-by-edge with
    /// the canonical formula (what the single-log10 fast path must
    /// reproduce).
    fn canonical_worst_snr(&self, state: &EvalState, scratch: &DeltaScratch) -> f64 {
        let edges = self.edge_endpoints.len();
        let mut worst = f64::INFINITY;
        for e in 0..edges {
            let snr = if scratch.is_affected(e) {
                let gain = if scratch.is_moved(e) {
                    self.path(scratch.new_path[e]).total_gain
                } else {
                    self.path(state.path_of_edge[e]).total_gain
                };
                self.snr_of(gain, scratch.new_noise[e])
            } else {
                state.snr[e]
            };
            worst = worst.min(snr);
        }
        if edges == 0 {
            worst = self.snr_ceiling.0;
        }
        worst
    }

    /// Ensures `tile` has a patched list this epoch: clones the current
    /// occupancy minus *removed* occupancies (moved edges keep their
    /// bitwise-shared head entries) and resets its changed-occupancy
    /// log.
    fn touch_tile(&self, state: &EvalState, scratch: &mut DeltaScratch, tile: usize) {
        if scratch.tile_mark[tile] == scratch.epoch {
            return;
        }
        scratch.tile_mark[tile] = scratch.epoch;
        let slot = scratch.patched_tiles.len();
        scratch.tile_slot[tile] = slot as u32;
        scratch.patched_tiles.push(tile);
        while scratch.patched_lists.len() <= slot {
            scratch.patched_lists.push(Vec::new());
            scratch.changed_occs.push(Vec::new());
        }
        scratch.changed_occs[slot].clear();
        let mut list = std::mem::take(&mut scratch.patched_lists[slot]);
        list.clear();
        list.extend(
            state.tile_hops[tile]
                .iter()
                .filter(|occ| !scratch.occ_removed(occ.edge as usize, occ.hop as usize)),
        );
        scratch.patched_lists[slot] = list;
    }
}
