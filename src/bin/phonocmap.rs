//! The `phonocmap` command-line tool: the user-facing face of the
//! reproduction, mirroring the workflow of the paper's Java toolset.
//!
//! ```text
//! phonocmap list
//! phonocmap describe-router crux
//! phonocmap show-app VOPD [--dot]
//! phonocmap analyze  --app VOPD [--topology mesh] [--router crux] [--seed 1]
//! phonocmap optimize --app VOPD [--algo r-pbla] [--objective snr|loss|power|margin]
//!                    [--topology mesh|torus|ring] [--router crux]
//!                    [--neighborhood auto|exhaustive|sampled|locality]
//!                    [--budget 100000] [--seed 42]
//! phonocmap optimize --file my_app.cg ...      # text-format CG input
//! phonocmap portfolio --app VOPD [--spec "r-pbla@sampled+sa,exchange=best,rounds=8"]
//! phonocmap sweep [--smoke] [--neighborhood P] [--out BENCH_sweep.json]
//! phonocmap replay [--smoke] [--budget N] [--out BENCH_warmstart.json]
//! phonocmap parallel-bench [--smoke] [--out BENCH_parallel.json]
//! phonocmap trace run.trace.jsonl              # analyze a recorded trace
//! ```
//!
//! `optimize`, `portfolio` and `replay` take `--trace-out PATH` to
//! record the run's structured telemetry as `phonocmap-trace/1` JSONL
//! (`phonoc_core::telemetry`); `phonocmap trace` reads such a file
//! back, prints the route-mix / lane-budget / cache-hit breakdowns and
//! verifies the reconciliation identities. Setting `PHONOC_TRACE_NULL`
//! keeps the sink off and writes a header-only trace — the CI check
//! that tracing is genuinely opt-in.
//!
//! The CG text format is documented in `phonoc_apps::text`.

use phonocmap::apps::text::parse_cg;
use phonocmap::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "list" => cmd_list(),
        "describe-router" => cmd_describe_router(&args),
        "show-app" => cmd_show_app(&args),
        "analyze" => cmd_analyze(&args),
        "optimize" => cmd_optimize(&args),
        "portfolio" => cmd_portfolio(&args),
        "sweep" => cmd_sweep(&args),
        "replay" => cmd_replay(&args),
        "parallel-bench" => cmd_parallel_bench(&args),
        "trace" => cmd_trace(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "phonocmap — application mapping for photonic NoCs
commands:
  list                         available benchmarks, routers, algorithms
  describe-router <name>       router datasheet (losses + crosstalk)
  show-app <name> [--dot]      benchmark communication graph
  analyze  --app <name> | --file <cg>   evaluate a random mapping
  optimize --app <name> | --file <cg>   search for the best mapping
  portfolio --app <name> | --file <cg>  race N search lanes with elite
        [--spec LANES[,exchange=E][,rounds=N][,collapse=K]]  (try `portfolio help`)
  sweep [--smoke] [--out PATH]          scenario-matrix sweep: peek-strategy
        [--samples N] [--moves N]       timings + optimizer results as JSON
        [--budget N]                    (r-pbla runs once per neighborhood
        [--neighborhood POLICY]         stream; POLICY restricts to one)
  replay [--smoke] [--out PATH]         warm-start request streams through a
        [--budget N]                    persistent cache (cold / exact hit /
                                        perturbed / phase change) as JSON
  parallel-bench [--smoke] [--out PATH] dispatch-overhead microbench: the
        [--samples N]                   persistent pool vs scope-spawn across
                                        batch size x item cost x workers
  trace <file>                          analyze a phonocmap-trace/1 JSONL file
                                        (route mix, lane budget flow, cache
                                        hits) and verify its accounting
options (analyze/optimize/portfolio):
  --topology mesh|torus|ring   (default mesh)
  --router   crux|crossbar|xy-crossbar   (default crux)
  --objective snr|loss|power[-pam4]|margin[-pam4]   (default snr)
  --algo NAME[@policy][/peek][!objective]  (default r-pbla; optimize only)
             NAME: rs|ga|r-pbla|sa|tabu|ils|exhaustive or portfolio:...
             /peek pins full|delta|bounded|hybrid; !objective re-targets
             the search (loss|snr|power[-pam4]|margin[-pam4])
  --neighborhood auto|exhaustive|sampled|locality  (default auto: exhaustive
             swap scans up to ~8x8 meshes, budget-aware sampling beyond)
  --budget N                   evaluations (default 100000)
  --seed N                     RNG seed (default 42)
  --trace-out PATH             record the run as phonocmap-trace/1 JSONL
             (optimize/portfolio/replay; read back with `phonocmap trace`;
             PHONOC_TRACE_NULL=1 writes a header-only trace, sink off)";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn cmd_list() -> Result<(), String> {
    println!("benchmarks:");
    for cg in phonocmap::apps::benchmarks::all_benchmarks() {
        println!(
            "  {:<15} {:>3} tasks {:>3} edges",
            cg.name(),
            cg.task_count(),
            cg.edge_count()
        );
    }
    println!("routers:");
    for name in RouterRegistry::with_builtins().names() {
        let r = RouterRegistry::with_builtins().get(name).expect("listed");
        println!(
            "  {:<15} {:>3} rings {:>3} crossings {:>3} connections",
            name,
            r.microring_count(),
            r.plain_crossing_count(),
            r.supported_pairs().len()
        );
    }
    println!("optimizers:");
    for name in phonocmap::opt::builtin_names() {
        println!("  {name}");
    }
    println!("routing algorithms:\n  xy (mesh/torus)\n  yx (mesh/torus)\n  ring (rings)");
    Ok(())
}

fn cmd_describe_router(args: &[String]) -> Result<(), String> {
    let name = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or("describe-router needs a router name")?;
    let router = RouterRegistry::with_builtins()
        .get(name)
        .ok_or_else(|| format!("unknown router `{name}`"))?;
    print!(
        "{}",
        phonocmap::router::report::datasheet(&router, &PhysicalParameters::default())
    );
    Ok(())
}

fn cmd_show_app(args: &[String]) -> Result<(), String> {
    let name = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or("show-app needs a benchmark name")?;
    let cg = phonocmap::apps::benchmarks::benchmark(name)
        .ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    if args.iter().any(|a| a == "--dot") {
        print!("{}", cg.to_dot());
    } else {
        print!("{}", phonocmap::apps::text::render_cg(&cg));
    }
    Ok(())
}

fn load_cg(args: &[String]) -> Result<CommunicationGraph, String> {
    if let Some(app) = flag(args, "--app") {
        return phonocmap::apps::benchmarks::benchmark(&app)
            .ok_or_else(|| format!("unknown benchmark `{app}`"));
    }
    if let Some(path) = flag(args, "--file") {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        return parse_cg(&text).map_err(|e| format!("cannot parse {path}: {e}"));
    }
    Err("need --app <benchmark> or --file <cg-file>".into())
}

struct Setup {
    problem: MappingProblem,
    seed: u64,
}

fn build_problem(args: &[String]) -> Result<Setup, String> {
    let cg = load_cg(args)?;
    let topology_kind = flag(args, "--topology").unwrap_or_else(|| "mesh".into());
    let router_name = flag(args, "--router").unwrap_or_else(|| "crux".into());
    let objective = match flag(args, "--objective").as_deref() {
        None => Objective::MaximizeWorstCaseSnr,
        Some(name) => Objective::by_name(name).ok_or_else(|| {
            format!("unknown objective `{name}` (snr|loss|power[-pam4]|margin[-pam4])")
        })?,
    };
    let seed: u64 = flag(args, "--seed")
        .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
        .transpose()?
        .unwrap_or(42);

    let pitch = Length::from_mm(2.5);
    let (w, h) = fit_grid(cg.task_count());
    let (topology, routing): (Topology, Box<dyn RoutingAlgorithm>) = match topology_kind.as_str() {
        "mesh" => (Topology::mesh(w, h, pitch), Box::new(XyRouting)),
        "torus" => (
            Topology::torus(w.max(3), h.max(3), pitch),
            Box::new(XyRouting),
        ),
        "ring" => (
            Topology::ring(cg.task_count().max(3), pitch),
            Box::new(RingRouting),
        ),
        other => return Err(format!("unknown topology `{other}` (mesh|torus|ring)")),
    };
    let router = RouterRegistry::with_builtins()
        .get(&router_name)
        .ok_or_else(|| format!("unknown router `{router_name}`"))?;
    let problem = MappingProblem::new(
        cg,
        topology,
        router,
        routing,
        PhysicalParameters::default(),
        objective,
    )
    .map_err(|e| e.to_string())?;
    Ok(Setup { problem, seed })
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let Setup { problem, seed } = build_problem(args)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mapping = Mapping::random(problem.task_count(), problem.tile_count(), &mut rng);
    print!("{}", analyze(&problem, &mapping));
    Ok(())
}

const PORTFOLIO_HELP: &str = "phonocmap portfolio — deterministic multi-lane search with elite exchange
Runs N search lanes as bulk-synchronous rounds. After each round, lanes
restart from an elite incumbent per the exchange policy; per-lane budget
slices sum exactly to --budget, so a portfolio run is comparable to any
single optimizer at the same budget. Results are bit-identical for every
worker-thread count (set PHONOC_WORKERS=N to pin).

usage:
  phonocmap portfolio --app <name> | --file <cg> [--spec SPEC] [options]

SPEC grammar (default: r-pbla@sampled+r-pbla@locality,exchange=best,rounds=14):
  lane[+lane...][,exchange=isolated|best|ring][,rounds=N][,collapse=K]
  lane = optimizer[@neighborhood][/peek]
    optimizer     rs|ga|r-pbla|sa|tabu|ils
    @neighborhood auto|exhaustive|sampled|locality  (swap-scan streams)
    /peek         hybrid|delta|full                 (cost only, never scores)
  exchange: isolated = pure race, best = all lanes restart from the round's
  best incumbent, ring = each lane inherits its left neighbour's elite.
  collapse: once one lane holds the global best K rounds in a row, all
  remaining budget flows to it (dominance collapse; off by default).

examples:
  phonocmap portfolio --app VOPD
  phonocmap portfolio --app MPEG4 --spec \"r-pbla@sampled+r-pbla@locality+sa,exchange=best,rounds=8\"
  phonocmap portfolio --app VOPD --spec \"r-pbla+tabu+ils,exchange=ring,rounds=4\" --budget 30000
  phonocmap optimize --app VOPD --algo \"portfolio:r-pbla@sampled+sa,rounds=4\"   # same engine

options: --topology, --router, --objective, --budget, --seed as in optimize";

fn cmd_portfolio(args: &[String]) -> Result<(), String> {
    if args
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        println!("{PORTFOLIO_HELP}");
        return Ok(());
    }
    if flag(args, "--neighborhood").is_some() {
        return Err(
            "--neighborhood does not apply to a portfolio run: each lane pins its own \
             policy in the spec (e.g. `r-pbla@locality+sa`)"
                .into(),
        );
    }
    let spec_text = flag(args, "--spec")
        .unwrap_or_else(|| "r-pbla@sampled+r-pbla@locality,exchange=best,rounds=14".into());
    let spec = PortfolioSpec::parse(&spec_text)?;
    let Setup { problem, seed } = build_problem(args)?;
    let budget: usize = flag(args, "--budget")
        .map(|s| s.parse().map_err(|_| format!("bad budget `{s}`")))
        .transpose()?
        .unwrap_or(100_000);
    if budget == 0 {
        return Err("--budget must be at least 1".into());
    }
    run_portfolio_session(&problem, &spec, budget, seed, flag(args, "--trace-out"))
}

/// Shared portfolio driver behind `phonocmap portfolio` and
/// `phonocmap optimize --algo portfolio:...`.
fn run_portfolio_session(
    problem: &MappingProblem,
    spec: &PortfolioSpec,
    budget: usize,
    seed: u64,
    trace_out: Option<String>,
) -> Result<(), String> {
    // The sink only observes the fixed lane-order reduction — the race
    // itself is bit-identical traced or not.
    let mut sink: Box<dyn phonocmap::core::TraceSink> = if trace_recording(trace_out.as_ref()) {
        Box::new(phonocmap::core::RunTrace::new())
    } else {
        Box::new(phonocmap::core::NullSink)
    };
    let result = phonocmap::opt::run_portfolio_seeded_traced(
        problem,
        spec,
        budget,
        seed,
        None,
        sink.as_mut(),
    );
    println!(
        "{} finished: {} rounds, {}/{} evaluations, best {} = {:.3}",
        result.spec,
        result.rounds,
        result.evaluations,
        result.budget,
        problem.objective(),
        result.best_score
    );
    if let Some((lane, round)) = result.collapsed {
        println!(
            "dominance collapse: lane {lane} ({}) took the whole budget from round {} on",
            result.lanes[lane].label,
            round + 1
        );
    }
    println!("lanes (allotments sum to the global budget):");
    for lane in &result.lanes {
        println!(
            "  {:<24} {:>7}/{:<7} evals  best {:>9.3} dB",
            lane.label, lane.used, lane.allotted, lane.best_score
        );
    }
    println!(
        "round incumbents: {}",
        result
            .round_best
            .iter()
            .map(|s| format!("{s:.3}"))
            .collect::<Vec<_>>()
            .join(" -> ")
    );
    println!();
    print!("{}", analyze(problem, &result.best_mapping));
    println!();
    print!("{}", result.stats.route_mix_table());
    if let Some(path) = trace_out {
        write_trace(&path, "portfolio", &sink.drain())?;
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    // One shared driver with the standalone `sweep` bin: same flags,
    // same progress output, same JSON provenance.
    bench::sweep::run_sweep_cli(args, "phonocmap sweep")
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    // One shared driver with the standalone `replay` bin.
    bench::replay::run_replay_cli(args, "phonocmap replay")
}

fn cmd_parallel_bench(args: &[String]) -> Result<(), String> {
    // One shared driver with the standalone `parallel` bin.
    bench::parallel::run_parallel_cli(args, "phonocmap parallel-bench")
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let path = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or("trace needs a JSONL trace file (record one with --trace-out)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let (header, events) = phonocmap::core::parse_trace(&text)?;
    print!("{}", phonocmap::core::summarize_trace(&header, &events)?);
    Ok(())
}

/// Whether `--trace-out` should install a recording sink: the flag was
/// given and `PHONOC_TRACE_NULL` (the CI off-switch check) is unset.
fn trace_recording(trace_out: Option<&String>) -> bool {
    trace_out.is_some() && std::env::var_os("PHONOC_TRACE_NULL").is_none()
}

/// Writes a recorded event stream as a `phonocmap-trace/1` JSONL file.
fn write_trace(
    path: &str,
    source: &str,
    events: &[phonocmap::core::TraceEvent],
) -> Result<(), String> {
    std::fs::write(path, phonocmap::core::render_trace(source, events))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {path} ({} events)", events.len());
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<(), String> {
    let Setup { problem, seed } = build_problem(args)?;
    let algo_name = flag(args, "--algo").unwrap_or_else(|| "r-pbla".into());
    let budget: usize = flag(args, "--budget")
        .map(|s| s.parse().map_err(|_| format!("bad budget `{s}`")))
        .transpose()?
        .unwrap_or(100_000);
    if budget == 0 {
        return Err("--budget must be at least 1".into());
    }
    // `--algo` speaks the one search grammar:
    // `name[@policy][/peek][!objective]` for a single optimizer (e.g.
    // `r-pbla@sampled/hybrid!power`), or `portfolio:...` for the
    // multi-lane racer (same engine as the `portfolio` subcommand).
    let single = match phonocmap::opt::search_spec(&algo_name)? {
        phonocmap::opt::SearchSpec::Portfolio(spec) => {
            if flag(args, "--neighborhood").is_some() {
                return Err(
                    "--neighborhood does not apply to a portfolio run: each lane pins its own \
                     policy in the spec (e.g. `portfolio:r-pbla@locality+sa`)"
                        .into(),
                );
            }
            return run_portfolio_session(&problem, &spec, budget, seed, flag(args, "--trace-out"));
        }
        phonocmap::opt::SearchSpec::Single(single) => single,
    };
    let explicit_policy = match flag(args, "--neighborhood") {
        Some(name) => Some(NeighborhoodPolicy::by_name(&name).ok_or_else(|| {
            format!("unknown neighborhood `{name}` (auto|exhaustive|sampled|locality)")
        })?),
        // `--algo r-pbla@sampled` works too; an explicit flag wins.
        None => single.policy,
    };
    // The policy only steers the swap-neighbourhood scanners; warn
    // instead of silently mislabeling a population-strategy run.
    if explicit_policy.is_some() && matches!(single.optimizer.name(), "rs" | "ga" | "exhaustive") {
        eprintln!(
            "warning: `{}` does not scan a swap neighborhood; --neighborhood has no effect",
            single.optimizer.name()
        );
    }
    let policy = explicit_policy.unwrap_or_default();

    let mut config = DseConfig::new(budget, seed)
        .with_strategy(single.strategy.unwrap_or_default())
        .with_policy(policy);
    config.objective = single.objective;
    // A `!objective` suffix re-targets the session; report under the
    // objective the scores actually mean.
    let objective = single.objective.unwrap_or_else(|| problem.objective());
    let trace_out = flag(args, "--trace-out");
    // The recorder is invisible to the search (bit-identical results,
    // property-pinned), so the traced and untraced paths print the
    // same report.
    let (result, events) = if trace_recording(trace_out.as_ref()) {
        phonocmap::core::run_dse_traced(&problem, single.optimizer.as_ref(), &config)
    } else {
        (
            run_dse(&problem, single.optimizer.as_ref(), &config),
            Vec::new(),
        )
    };
    println!(
        "{} finished: {} evaluations, best {} = {:.3}",
        result.optimizer, result.evaluations, objective, result.best_score
    );
    println!("task placement:");
    for t in problem.cg().tasks() {
        let tile = result.best_mapping.tile_of_task(t.0);
        let c = problem.topology().coord(tile);
        println!(
            "  {:<16} -> tile {:<3} {}",
            problem.cg().task_name(t),
            tile.0,
            c
        );
    }
    println!();
    print!("{}", analyze(&problem, &result.best_mapping));
    println!();
    print!("{}", result.stats.route_mix_table());
    if let Some(path) = trace_out {
        write_trace(&path, "optimize", &events)?;
    }
    Ok(())
}
