//! A plain-text interchange format for communication graphs, so the
//! command-line tool can consume user applications without a JSON/YAML
//! dependency.
//!
//! Format (line-oriented, `#` starts a comment):
//!
//! ```text
//! # my application
//! app my-app
//! task producer
//! task filter
//! task consumer
//! edge producer filter 64
//! edge filter consumer 32.5
//! ```
//!
//! # Examples
//!
//! ```
//! use phonoc_apps::text::{parse_cg, render_cg};
//!
//! let cg = parse_cg("app demo\ntask a\ntask b\nedge a b 8\n").unwrap();
//! assert_eq!(cg.name(), "demo");
//! let roundtrip = parse_cg(&render_cg(&cg)).unwrap();
//! assert_eq!(cg, roundtrip);
//! ```

use crate::cg::{CgBuilder, CgError, CommunicationGraph};
use std::fmt;

/// Errors from [`parse_cg`].
#[derive(Debug, Clone, PartialEq)]
pub enum CgTextError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The graph parsed but failed semantic validation.
    Semantic(CgError),
}

impl fmt::Display for CgTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CgTextError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            CgTextError::Semantic(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for CgTextError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CgTextError::Semantic(e) => Some(e),
            CgTextError::Syntax { .. } => None,
        }
    }
}

impl From<CgError> for CgTextError {
    fn from(e: CgError) -> Self {
        CgTextError::Semantic(e)
    }
}

/// Parses the text format described in the module docs.
///
/// # Errors
///
/// Returns [`CgTextError::Syntax`] for malformed lines (with the line
/// number) and [`CgTextError::Semantic`] for graphs that violate
/// [`CgBuilder::build`]'s rules (duplicate tasks, self-loops, …).
pub fn parse_cg(text: &str) -> Result<CommunicationGraph, CgTextError> {
    let mut name = String::from("unnamed");
    let mut pending_tasks: Vec<String> = Vec::new();
    let mut pending_edges: Vec<(String, String, f64)> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("nonempty line has a first token");
        match keyword {
            "app" => {
                let n: Vec<&str> = parts.collect();
                if n.is_empty() {
                    return Err(CgTextError::Syntax {
                        line: line_no,
                        message: "`app` needs a name".into(),
                    });
                }
                name = n.join(" ");
            }
            "task" => {
                let Some(task) = parts.next() else {
                    return Err(CgTextError::Syntax {
                        line: line_no,
                        message: "`task` needs a name".into(),
                    });
                };
                if parts.next().is_some() {
                    return Err(CgTextError::Syntax {
                        line: line_no,
                        message: "`task` takes exactly one name".into(),
                    });
                }
                pending_tasks.push(task.to_owned());
            }
            "edge" => {
                let (Some(src), Some(dst), Some(bw)) = (parts.next(), parts.next(), parts.next())
                else {
                    return Err(CgTextError::Syntax {
                        line: line_no,
                        message: "`edge` needs: edge <src> <dst> <bandwidth>".into(),
                    });
                };
                let bw: f64 = bw.parse().map_err(|_| CgTextError::Syntax {
                    line: line_no,
                    message: format!("bandwidth `{bw}` is not a number"),
                })?;
                pending_edges.push((src.to_owned(), dst.to_owned(), bw));
            }
            other => {
                return Err(CgTextError::Syntax {
                    line: line_no,
                    message: format!("unknown keyword `{other}` (expected app / task / edge)"),
                });
            }
        }
    }

    let mut b = CgBuilder::new(name);
    for t in pending_tasks {
        b = b.task(t);
    }
    for (s, d, bw) in pending_edges {
        b = b.edge(s, d, bw);
    }
    Ok(b.build()?)
}

/// Renders a graph back to the text format ([`parse_cg`]'s inverse).
#[must_use]
pub fn render_cg(cg: &CommunicationGraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "app {}", cg.name());
    for t in cg.tasks() {
        let _ = writeln!(out, "task {}", cg.task_name(t));
    }
    for e in cg.edges() {
        let _ = writeln!(
            out,
            "edge {} {} {}",
            cg.task_name(e.src),
            cg.task_name(e.dst),
            e.bandwidth
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_graph() {
        let cg = parse_cg("app demo\ntask a\ntask b\nedge a b 64\n").unwrap();
        assert_eq!(cg.name(), "demo");
        assert_eq!(cg.task_count(), 2);
        assert_eq!(cg.edge_count(), 1);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let cg =
            parse_cg("# header\n\napp x # trailing\n task a\ntask b\n\nedge a b 1 # bw\n").unwrap();
        assert_eq!(cg.name(), "x");
        assert_eq!(cg.edge_count(), 1);
    }

    #[test]
    fn rejects_unknown_keyword_with_line_number() {
        let err = parse_cg("app x\nnode a\n").unwrap_err();
        match err {
            CgTextError::Syntax { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("node"));
            }
            other => panic!("expected syntax error, got {other}"),
        }
    }

    #[test]
    fn rejects_bad_bandwidth() {
        let err = parse_cg("task a\ntask b\nedge a b lots\n").unwrap_err();
        assert!(matches!(err, CgTextError::Syntax { line: 3, .. }), "{err}");
    }

    #[test]
    fn rejects_incomplete_edge() {
        let err = parse_cg("task a\nedge a\n").unwrap_err();
        assert!(matches!(err, CgTextError::Syntax { line: 2, .. }));
    }

    #[test]
    fn surfaces_semantic_errors() {
        let err = parse_cg("task a\nedge a a 5\n").unwrap_err();
        assert!(matches!(err, CgTextError::Semantic(_)), "{err}");
    }

    #[test]
    fn every_benchmark_round_trips() {
        for cg in crate::benchmarks::all_benchmarks() {
            let text = render_cg(&cg);
            let parsed =
                parse_cg(&text).unwrap_or_else(|e| panic!("{} failed to reparse: {e}", cg.name()));
            assert_eq!(cg, parsed, "{} round trip", cg.name());
        }
    }

    #[test]
    fn unnamed_graphs_get_a_default_name() {
        let cg = parse_cg("task a\ntask b\nedge a b 2\n").unwrap();
        assert_eq!(cg.name(), "unnamed");
    }
}
