//! Properties of the portfolio subsystem that must hold by
//! construction, pinned in CI:
//!
//! * **thread-count invariance** — a full portfolio run (lanes fanned
//!   out over `parallel_map_tasks`, nested batch scans inside each
//!   lane) is bit-identical at 1, 2 and 4 workers, under every
//!   exchange policy;
//! * **budget honesty** — lane allotments sum exactly to the global
//!   budget and no lane overruns its allotment;
//! * **determinism per seed**, and seed sensitivity;
//! * **exchange semantics** — seeded starts actually reach the lanes
//!   (a planted elite is visible through `initial_mapping`).

use phonoc_apps::scenario::{ScenarioFamily, ScenarioSpec};
use phonoc_core::parallel::set_worker_override;
use phonoc_core::{MappingProblem, Objective, OptContext};
use phonoc_opt::{run_portfolio, ExchangePolicy, PortfolioSpec};
use phonoc_phys::{Length, PhysicalParameters};
use phonoc_route::XyRouting;
use phonoc_router::crux::crux_router;
use phonoc_topo::Topology;
use std::sync::{Mutex, MutexGuard};

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

struct Pinned<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

impl Drop for Pinned<'_> {
    fn drop(&mut self) {
        set_worker_override(None);
    }
}

fn pin() -> Pinned<'static> {
    Pinned(OVERRIDE_LOCK.lock().unwrap())
}

fn problem(family: ScenarioFamily, mesh: usize, seed: u64) -> MappingProblem {
    let spec = ScenarioSpec {
        family,
        mesh,
        density_pct: 100,
        seed,
    };
    MappingProblem::new(
        spec.build(),
        Topology::mesh(mesh, mesh, Length::from_mm(2.5)),
        crux_router(),
        Box::new(XyRouting),
        PhysicalParameters::default(),
        Objective::MaximizeWorstCaseSnr,
    )
    .unwrap()
}

#[test]
fn portfolio_runs_are_bit_identical_across_worker_counts() {
    let _pin = pin();
    let p = problem(ScenarioFamily::Hotspot, 6, 1);
    // Mixed lanes: scan-based, trajectory and population strategies,
    // so the invariance covers every scoring path (batch peeks, single
    // peeks, batch evaluation) nested inside the lane fan-out.
    let spec = PortfolioSpec::parse("r-pbla@sampled+sa+ga,exchange=best,rounds=3").unwrap();
    set_worker_override(Some(1));
    let reference = run_portfolio(&p, &spec, 360, 42);
    for workers in [1usize, 2, 4] {
        set_worker_override(Some(workers));
        let run = run_portfolio(&p, &spec, 360, 42);
        assert_eq!(
            run.best_mapping, reference.best_mapping,
            "best mapping @ {workers} workers"
        );
        assert_eq!(
            run.best_score.to_bits(),
            reference.best_score.to_bits(),
            "best score @ {workers} workers"
        );
        assert_eq!(run.evaluations, reference.evaluations);
        let scores: Vec<u64> = run.lanes.iter().map(|l| l.best_score.to_bits()).collect();
        let ref_scores: Vec<u64> = reference
            .lanes
            .iter()
            .map(|l| l.best_score.to_bits())
            .collect();
        assert_eq!(scores, ref_scores, "lane scores @ {workers} workers");
        let rounds: Vec<u64> = run.round_best.iter().map(|s| s.to_bits()).collect();
        let ref_rounds: Vec<u64> = reference.round_best.iter().map(|s| s.to_bits()).collect();
        assert_eq!(rounds, ref_rounds, "round history @ {workers} workers");
    }
}

#[test]
fn every_exchange_policy_is_worker_count_invariant() {
    let _pin = pin();
    let p = problem(ScenarioFamily::Random, 4, 2);
    for exchange in ExchangePolicy::ALL {
        let spec = PortfolioSpec::parse(&format!(
            "r-pbla@locality+tabu+ils,exchange={exchange},rounds=3"
        ))
        .unwrap();
        set_worker_override(Some(1));
        let reference = run_portfolio(&p, &spec, 240, 7);
        for workers in [2usize, 4] {
            set_worker_override(Some(workers));
            let run = run_portfolio(&p, &spec, 240, 7);
            assert_eq!(run.best_mapping, reference.best_mapping, "{exchange}");
            assert_eq!(
                run.best_score.to_bits(),
                reference.best_score.to_bits(),
                "{exchange}"
            );
            assert_eq!(run.evaluations, reference.evaluations, "{exchange}");
        }
    }
}

#[test]
fn ledgers_sum_to_the_global_budget_and_lanes_never_overrun() {
    let p = problem(ScenarioFamily::Tree, 4, 3);
    for budget in [37usize, 240, 1_001] {
        let spec = PortfolioSpec::parse("r-pbla+sa+rs,exchange=ring,rounds=4").unwrap();
        let r = run_portfolio(&p, &spec, budget, 5);
        assert_eq!(r.budget, budget);
        assert_eq!(
            r.lanes.iter().map(|l| l.allotted).sum::<usize>(),
            budget,
            "allotments must sum exactly to the global budget"
        );
        for lane in &r.lanes {
            assert!(
                lane.used <= lane.allotted,
                "{} overran: {}/{}",
                lane.label,
                lane.used,
                lane.allotted
            );
        }
        assert_eq!(r.evaluations, r.lanes.iter().map(|l| l.used).sum::<usize>());
        assert!(r.evaluations <= budget);
    }
}

#[test]
fn deterministic_per_seed_and_seed_sensitive() {
    // A 6×6 instance under a small budget: far from converged, so
    // different seeds cannot plausibly coincide bit-for-bit.
    let p = problem(ScenarioFamily::Clustered, 6, 1);
    let spec = PortfolioSpec::parse("r-pbla@sampled+tabu,exchange=best,rounds=3").unwrap();
    let a = run_portfolio(&p, &spec, 90, 21);
    let b = run_portfolio(&p, &spec, 90, 21);
    assert_eq!(a.best_mapping, b.best_mapping);
    assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
    let c = run_portfolio(&p, &spec, 90, 22);
    // Different seeds explore different trajectories; scores may tie on
    // plateaus but the full lane breakdown coinciding bitwise would
    // mean the seed is ignored.
    let fingerprint = |r: &phonoc_opt::PortfolioResult| {
        (
            r.best_mapping.clone(),
            r.lanes
                .iter()
                .map(|l| (l.used, l.best_score.to_bits()))
                .collect::<Vec<_>>(),
        )
    };
    assert_ne!(fingerprint(&a), fingerprint(&c));
}

#[test]
fn seeded_starts_reach_the_optimizers() {
    // The exchange hook itself: a planted elite comes back out of
    // `initial_mapping`, and only once.
    let p = problem(ScenarioFamily::Pipeline, 4, 1);
    let mut ctx = OptContext::new(&p, 10, 3);
    let elite = ctx.random_mapping();
    ctx.set_seed_start(elite.clone());
    assert_eq!(ctx.initial_mapping(), elite);
    assert_ne!(ctx.initial_mapping(), elite, "seed must be one-shot");
}

#[test]
fn broadcast_exchange_propagates_the_elite() {
    // Under broadcast-best every lane restarts from the global round
    // best, so the portfolio's final score can never trail what its
    // own first round established.
    let p = problem(ScenarioFamily::Hotspot, 4, 2);
    let spec =
        PortfolioSpec::parse("r-pbla@sampled+r-pbla@locality,exchange=best,rounds=4").unwrap();
    let r = run_portfolio(&p, &spec, 400, 11);
    assert!(r.round_best.windows(2).all(|w| w[1] >= w[0]));
    assert_eq!(r.round_best.last().copied(), Some(r.best_score));
    // With exchange on, every lane has seen the elite; lanes can only
    // deviate *above* it in later rounds, so no lane ends below the
    // first round's shared incumbent.
    for lane in &r.lanes {
        assert!(
            lane.best_score >= r.round_best[0],
            "{} at {} fell below the round-1 incumbent {}",
            lane.label,
            lane.best_score,
            r.round_best[0]
        );
    }
}
