//! # phonocmap
//!
//! A Rust reproduction of **PhoNoCMap** (Fusella & Cilardo, DATE 2016):
//! automated design-space exploration of application-task mappings for
//! photonic networks-on-chip, minimizing worst-case insertion loss or
//! maximizing worst-case crosstalk SNR.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`phys`] — photonic building blocks, Table I parameters, transfer
//!   equations, BER and power-budget analysis.
//! * [`router`] — optical router netlists (Crux, crossbars) and the DSL
//!   to define new ones.
//! * [`topo`] — mesh/torus/ring topologies with physical geometry.
//! * [`route`] — XY/YX/ring routing algorithms.
//! * [`apps`] — the paper's eight multimedia benchmarks + generators.
//! * [`core`] — the mapping problem, evaluator, and DSE engine.
//! * [`opt`] — RS, GA, R-PBLA, SA, tabu, exhaustive search strategies,
//!   plus the branch-and-bound exact lane with optimality certificates.
//!
//! # Quickstart
//!
//! ```
//! use phonocmap::prelude::*;
//!
//! # fn main() -> Result<(), phonocmap::core::CoreError> {
//! // VOPD on a 4×4 mesh of Crux routers, XY routing, Table I physics.
//! let problem = MappingProblem::new(
//!     phonocmap::apps::benchmarks::vopd(),
//!     Topology::mesh(4, 4, Length::from_mm(2.5)),
//!     crux_router(),
//!     Box::new(XyRouting),
//!     PhysicalParameters::default(),
//!     Objective::MaximizeWorstCaseSnr,
//! )?;
//!
//! // Optimize with the paper's R-PBLA under a fixed evaluation budget.
//! let result = run_dse(&problem, &Rpbla, &DseConfig::new(2_000, 42));
//! let report = analyze(&problem, &result.best_mapping);
//! println!("{report}");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use phonoc_apps as apps;
pub use phonoc_core as core;
pub use phonoc_opt as opt;
pub use phonoc_phys as phys;
pub use phonoc_route as route;
pub use phonoc_router as router;
pub use phonoc_topo as topo;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use phonoc_apps::{benchmarks, CgBuilder, CommunicationGraph};
    pub use phonoc_core::{
        analyze, run_dse, CoreError, DseConfig, DseResult, Evaluator, Mapping, MappingOptimizer,
        MappingProblem, NeighborhoodPolicy, NetworkReport, Objective, OptContext,
    };
    pub use phonoc_opt::{
        run_portfolio, Certificate, ExactSearch, ExchangePolicy, Exhaustive, GeneticAlgorithm,
        PortfolioResult, PortfolioSpec, RandomSearch, Rpbla, SimulatedAnnealing, TabuSearch,
    };
    pub use phonoc_phys::{Db, Dbm, Length, PhysicalParameters, PowerBudget};
    pub use phonoc_route::{RingRouting, RoutingAlgorithm, XyRouting, YxRouting};
    pub use phonoc_router::crossbar::{crossbar_router, xy_crossbar_router};
    pub use phonoc_router::crux::crux_router;
    pub use phonoc_router::{
        NetlistBuilder, PassMode, Port, PortPair, RouterModel, RouterRegistry,
    };
    pub use phonoc_topo::{fit_grid, TileId, Topology, TopologyKind};
}
