//! Criterion micro-benchmarks for the mapping evaluator: the operation
//! every search algorithm pays per candidate, so its throughput bounds
//! the whole design-space exploration (paper Table II ran 100 000+
//! evaluations per cell).
//!
//! Medians from each run are recorded in `BENCH_evaluator.json` at the
//! repository root so the perf trajectory stays machine-readable.

use bench::{paper_problem, TABLE2_APPS};
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use phonoc_core::{DeltaScratch, DseConfig, EvalScratch, Mapping, MappingProblem, Objective};
use phonoc_phys::PhysicalParameters;
use phonoc_route::XyRouting;
use phonoc_router::crux::crux_router;
use phonoc_topo::{Topology, TopologyKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An 8×8-mesh instance: no paper benchmark exceeds 32 tasks, so the
/// scaling point uses a seeded synthetic CG with VOPD-like density.
fn synthetic_8x8() -> MappingProblem {
    let mut rng = StdRng::seed_from_u64(42);
    let cg = phonoc_apps::synthetic::random(56, 60, &mut rng);
    MappingProblem::new(
        cg,
        Topology::mesh(8, 8, bench::tile_pitch()),
        crux_router(),
        Box::new(XyRouting),
        PhysicalParameters::default(),
        Objective::MaximizeWorstCaseSnr,
    )
    .expect("synthetic 8x8 instance is valid")
}

fn evaluator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate_mapping");
    for app in TABLE2_APPS {
        let problem = paper_problem(app, TopologyKind::Mesh, Objective::MaximizeWorstCaseSnr);
        let tasks = problem.task_count();
        let tiles = problem.tile_count();
        group.bench_function(app, |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter_batched(
                || Mapping::random(tasks, tiles, &mut rng),
                |m| problem.evaluate(&m),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn evaluator_construction(c: &mut Criterion) {
    // Problem assembly precomputes every tile-pair path and the router
    // interaction matrix; it is paid once per experiment cell.
    c.bench_function("evaluator_precompute_dvopd_6x6", |b| {
        b.iter(|| paper_problem("DVOPD", TopologyKind::Mesh, Objective::MaximizeWorstCaseSnr));
    });
}

/// The full-vs-incremental comparison on one instance: rescoring a
/// single swap incrementally vs. a from-scratch evaluation of the
/// swapped mapping. All paths produce bit-identical worst cases.
///
///  * `full_reevaluate_swap` — the scratch-reusing full evaluation of
///    the swapped mapping (the honest full-eval baseline after PR 2).
///  * `evaluate_delta_swap` — the exact SNR-bearing delta on a random
///    mapping: the dense worst case (a random placement couples a
///    large fraction of all communications to any swap).
///  * `evaluate_delta_loss_swap` — the loss objective (Eq. 3): no
///    crosstalk, 1–2 orders of magnitude faster than full.
fn full_vs_delta_on(c: &mut Criterion, name: &str, problem: &MappingProblem) {
    let evaluator = problem.evaluator();
    let tasks = problem.task_count();
    let tiles = problem.tile_count();
    let mut rng = StdRng::seed_from_u64(7);
    let mapping = Mapping::random(tasks, tiles, &mut rng);
    let state = evaluator.init_state(&mapping);
    // A fixed cycle of single-swap moves, so all sides rescore the
    // same workload.
    let moves: Vec<phonoc_core::Move> = (0..64)
        .map(|_| mapping.random_swap_move(&mut rng))
        .collect();

    let mut group = c.benchmark_group(name);
    group.bench_function("full_reevaluate_swap", |b| {
        let mut scratch = EvalScratch::default();
        let mut i = 0usize;
        b.iter(|| {
            let mv = moves[i % moves.len()];
            i += 1;
            let moved = mapping.with_move(mv);
            black_box(evaluator.evaluate_into(&moved, None, &mut scratch))
        });
    });
    group.bench_function("evaluate_delta_swap", |b| {
        let mut scratch = DeltaScratch::default();
        let mut i = 0usize;
        b.iter(|| {
            let mv = moves[i % moves.len()];
            i += 1;
            black_box(evaluator.evaluate_delta_with(&state, &mapping, mv, &mut scratch))
        });
    });
    group.bench_function("evaluate_delta_loss_swap", |b| {
        let mut scratch = DeltaScratch::default();
        let mut i = 0usize;
        b.iter(|| {
            let mv = moves[i % moves.len()];
            i += 1;
            black_box(evaluator.evaluate_delta_loss(&state, &mapping, mv, &mut scratch))
        });
    });
    group.finish();
}

fn full_vs_delta(c: &mut Criterion) {
    // The headline instance (VOPD/4×4) plus the search-time workload
    // from an R-PBLA-optimized placement.
    let problem = paper_problem("VOPD", TopologyKind::Mesh, Objective::MaximizeWorstCaseSnr);
    full_vs_delta_on(c, "full_vs_delta_vopd_4x4", &problem);
    {
        let evaluator = problem.evaluator();
        let optimized = phonoc_core::run_dse(
            &problem,
            phonoc_opt::registry::optimizer("r-pbla").unwrap().as_ref(),
            &DseConfig::new(3_000, 5),
        )
        .best_mapping;
        let opt_state = evaluator.init_state(&optimized);
        let opt_moves: Vec<phonoc_core::Move> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..64)
                .map(|_| optimized.random_swap_move(&mut rng))
                .collect()
        };
        let mut group = c.benchmark_group("full_vs_delta_vopd_4x4");
        group.bench_function("evaluate_delta_swap_optimized", |b| {
            let mut scratch = DeltaScratch::default();
            let mut i = 0usize;
            b.iter(|| {
                let mv = opt_moves[i % opt_moves.len()];
                i += 1;
                black_box(evaluator.evaluate_delta_with(&opt_state, &optimized, mv, &mut scratch))
            });
        });
        group.bench_function("full_reevaluate_swap_optimized", |b| {
            let mut scratch = EvalScratch::default();
            let mut i = 0usize;
            b.iter(|| {
                let mv = opt_moves[i % opt_moves.len()];
                i += 1;
                let moved = optimized.with_move(mv);
                black_box(evaluator.evaluate_into(&moved, None, &mut scratch))
            });
        });
        group.finish();
    }

    // Mesh scaling: the affected-edge index gets sparser as meshes
    // grow, so the delta win should widen past 4×4 (ROADMAP "scale past
    // 8×8").
    let dvopd = paper_problem("DVOPD", TopologyKind::Mesh, Objective::MaximizeWorstCaseSnr);
    full_vs_delta_on(c, "full_vs_delta_dvopd_6x6", &dvopd);
    let synth = synthetic_8x8();
    full_vs_delta_on(c, "full_vs_delta_synthetic_8x8", &synth);
}

/// Allocating full evaluation vs. the scratch-reusing path, on the
/// paper-style sweep workload (a cycle of random mappings).
///
/// Three rungs: `evaluate_reference` is the original ~20-allocation
/// pass (kept in-tree as the oracle/baseline), `evaluate_alloc` the
/// current thin wrapper (fresh scratch + materialized metrics per
/// call), and `evaluate_into_scratch` the reused-scratch path that
/// search loops ride — zero allocation, one `log10` per evaluation.
fn full_alloc_vs_scratch(c: &mut Criterion) {
    for (name, problem) in [
        (
            "full_alloc_vs_scratch_vopd_4x4",
            paper_problem("VOPD", TopologyKind::Mesh, Objective::MaximizeWorstCaseSnr),
        ),
        (
            "full_alloc_vs_scratch_dvopd_6x6",
            paper_problem("DVOPD", TopologyKind::Mesh, Objective::MaximizeWorstCaseSnr),
        ),
        ("full_alloc_vs_scratch_synthetic_8x8", synthetic_8x8()),
    ] {
        let evaluator = problem.evaluator();
        let tasks = problem.task_count();
        let tiles = problem.tile_count();
        let mut rng = StdRng::seed_from_u64(3);
        let mappings: Vec<Mapping> = (0..64)
            .map(|_| Mapping::random(tasks, tiles, &mut rng))
            .collect();
        let mut group = c.benchmark_group(name);
        group.bench_function("evaluate_reference", |b| {
            let mut i = 0usize;
            b.iter(|| {
                let m = &mappings[i % mappings.len()];
                i += 1;
                black_box(evaluator.evaluate_reference(m, None))
            });
        });
        group.bench_function("evaluate_alloc", |b| {
            let mut i = 0usize;
            b.iter(|| {
                let m = &mappings[i % mappings.len()];
                i += 1;
                black_box(evaluator.evaluate(m))
            });
        });
        group.bench_function("evaluate_into_scratch", |b| {
            let mut scratch = EvalScratch::default();
            let mut i = 0usize;
            b.iter(|| {
                let m = &mappings[i % mappings.len()];
                i += 1;
                black_box(evaluator.evaluate_into(m, None, &mut scratch))
            });
        });
        group.finish();
    }
}

/// Bound-then-verify SNR peeks vs. exact deltas on the dense worst
/// case: a random VOPD/4×4 placement, threshold at the incumbent
/// (current worst-case SNR) — exactly the greedy-descent workload that
/// used to sit at parity with full evaluation.
fn snr_peek_bound_vs_exact(c: &mut Criterion) {
    let problem = paper_problem("VOPD", TopologyKind::Mesh, Objective::MaximizeWorstCaseSnr);
    let evaluator = problem.evaluator();
    let mut rng = StdRng::seed_from_u64(7);
    let mapping = Mapping::random(problem.task_count(), problem.tile_count(), &mut rng);
    let state = evaluator.init_state(&mapping);
    let threshold = state.worst_case_snr();
    let moves: Vec<phonoc_core::Move> = (0..64)
        .map(|_| mapping.random_swap_move(&mut rng))
        .collect();

    let mut group = c.benchmark_group("snr_peek_bound_vs_exact_vopd_4x4");
    group.bench_function("exact_delta_peek", |b| {
        let mut scratch = DeltaScratch::default();
        let mut i = 0usize;
        b.iter(|| {
            let mv = moves[i % moves.len()];
            i += 1;
            black_box(evaluator.evaluate_delta_with(&state, &mapping, mv, &mut scratch))
        });
    });
    group.bench_function("bounded_peek_vs_incumbent", |b| {
        let mut scratch = DeltaScratch::default();
        let mut i = 0usize;
        b.iter(|| {
            let mv = moves[i % moves.len()];
            i += 1;
            black_box(evaluator.evaluate_delta_bounded(
                &state,
                &mapping,
                mv,
                &mut scratch,
                threshold,
            ))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    evaluator_throughput,
    evaluator_construction,
    full_vs_delta,
    full_alloc_vs_scratch,
    snr_peek_bound_vs_exact
);
criterion_main!(benches);
