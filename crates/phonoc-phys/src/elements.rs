//! Photonic building blocks and their first-order transfer equations
//! (paper Eqs. 1a–1j).
//!
//! The paper's component library contains three fundamental devices
//! (Section II-B):
//!
//! * the **silicon waveguide** — pure propagation loss `Lp · length`;
//! * the **waveguide crossing** — two perpendicular waveguides; a signal
//!   passes straight with loss `Lc` and leaks `Kc` into *both*
//!   perpendicular directions (Eqs. 1i, 1j);
//! * the **photonic switching element (PSE)** — a microring resonator
//!   coupled to two waveguides, in one of two geometries:
//!   *parallel* ([`PseKind::Parallel`], PPSE, Fig. 2a–b) or *crossing*
//!   ([`PseKind::Crossing`], CPSE, Fig. 2c–d).
//!
//! A PSE is in [`ResonanceState::On`] when the traversing wavelength
//! matches the ring resonance (the signal is coupled to the drop port), or
//! [`ResonanceState::Off`] (the signal continues to the through port).
//!
//! The ten transfer equations are exposed both as power-in/power-out
//! functions on [`PhysicalParameters`] via [`ElementTransfer`], and as raw
//! coefficient lookups used by the router netlist analysis.
//!
//! # Examples
//!
//! ```
//! use phonoc_phys::elements::{ElementTransfer, PseKind, ResonanceState};
//! use phonoc_phys::params::PhysicalParameters;
//! use phonoc_phys::units::Milliwatts;
//!
//! let p = PhysicalParameters::default();
//! let t = ElementTransfer::new(&p);
//! // Eq. (1c): P_D = Lp,on · P_in for an ON parallel PSE.
//! let dropped = t.pse_main_output(PseKind::Parallel, ResonanceState::On, Milliwatts(1.0));
//! assert!((dropped.0 - 0.891).abs() < 1e-3);
//! ```

use crate::params::PhysicalParameters;
use crate::units::{Db, LinearGain, Milliwatts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two PSE geometries of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PseKind {
    /// PPSE: microring between two *parallel* waveguides (Fig. 2a–b).
    /// Dropping reverses the propagation direction on the second
    /// waveguide.
    Parallel,
    /// CPSE: microring at a *waveguide crossing* (Fig. 2c–d). Dropping
    /// turns the signal onto the perpendicular waveguide.
    Crossing,
}

impl fmt::Display for PseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PseKind::Parallel => write!(f, "PPSE"),
            PseKind::Crossing => write!(f, "CPSE"),
        }
    }
}

/// Whether the microring resonance matches the traversing wavelength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResonanceState {
    /// The ring resonates: the input signal is coupled to the drop port.
    On,
    /// The ring is detuned: the input signal continues to the through
    /// port.
    Off,
}

impl fmt::Display for ResonanceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResonanceState::On => write!(f, "ON"),
            ResonanceState::Off => write!(f, "OFF"),
        }
    }
}

/// Coefficient-level view of Eqs. (1a)–(1j) for a given parameter set.
///
/// The *main output* of an element traversal is where the signal is
/// supposed to go (through port when OFF, drop port when ON, straight
/// across for a plain crossing); the *leak output* is where first-order
/// crosstalk escapes. Both are returned as linear gains so that the
/// network-level analysis can multiply/accumulate them cheaply.
#[derive(Debug, Clone, Copy)]
pub struct ElementTransfer<'p> {
    params: &'p PhysicalParameters,
}

impl<'p> ElementTransfer<'p> {
    /// Creates a transfer-function view over `params`.
    #[must_use]
    pub fn new(params: &'p PhysicalParameters) -> Self {
        ElementTransfer { params }
    }

    /// Loss (dB) experienced by the signal on its intended path through a
    /// PSE.
    ///
    /// * OFF, Parallel → Eq. (1a): `Lp,off`
    /// * ON, Parallel → Eq. (1c): `Lp,on`
    /// * OFF, Crossing → Eq. (1e): `Lc,off`
    /// * ON, Crossing → Eq. (1g): `Lc,on`
    #[must_use]
    pub fn pse_main_loss(&self, kind: PseKind, state: ResonanceState) -> Db {
        match (kind, state) {
            (PseKind::Parallel, ResonanceState::Off) => self.params.ppse_off_loss,
            (PseKind::Parallel, ResonanceState::On) => self.params.ppse_on_loss,
            (PseKind::Crossing, ResonanceState::Off) => self.params.cpse_off_loss,
            (PseKind::Crossing, ResonanceState::On) => self.params.cpse_on_loss,
        }
    }

    /// First-order crosstalk gain leaked by a PSE traversal to its
    /// complementary port, as a *linear* gain because the CPSE-OFF case is
    /// a linear sum of two coefficients.
    ///
    /// * OFF, Parallel → Eq. (1b): `Kp,off` into the drop port
    /// * ON, Parallel → Eq. (1d): `Kp,on` into the through port
    /// * OFF, Crossing → Eq. (1f): `Kp,off + Kc` into the drop port
    /// * ON, Crossing → Eq. (1h): `Kp,on` into the through port
    #[must_use]
    pub fn pse_leak_gain(&self, kind: PseKind, state: ResonanceState) -> LinearGain {
        match (kind, state) {
            (PseKind::Parallel, ResonanceState::Off) => self.params.pse_off_crosstalk.to_linear(),
            (PseKind::Parallel, ResonanceState::On) => self.params.pse_on_crosstalk.to_linear(),
            (PseKind::Crossing, ResonanceState::Off) => {
                // Eq. (1f): P_D = (Kp,off + Kc) · P_in — a *linear* sum.
                self.params.pse_off_crosstalk.to_linear()
                    + self.params.crossing_crosstalk.to_linear()
            }
            (PseKind::Crossing, ResonanceState::On) => self.params.pse_on_crosstalk.to_linear(),
        }
    }

    /// Loss (dB) of passing straight through a plain waveguide crossing,
    /// Eq. (1i): `P_out2 = Lc · P_in`.
    #[must_use]
    pub fn crossing_loss(&self) -> Db {
        self.params.crossing_loss
    }

    /// Crosstalk gain leaked into *each* perpendicular direction of a
    /// plain crossing, Eq. (1j): `P_out1 = P_out3 = Kc · P_in`.
    #[must_use]
    pub fn crossing_leak_gain(&self) -> LinearGain {
        self.params.crossing_crosstalk.to_linear()
    }

    /// Propagation loss of a straight waveguide of length `cm`
    /// centimetres: `Lp · length`.
    #[must_use]
    pub fn propagation_loss(&self, cm: f64) -> Db {
        self.params.propagation_loss_per_cm * cm
    }

    /// Output power on the intended path of a PSE traversal
    /// (Eqs. 1a, 1c, 1e, 1g).
    #[must_use]
    pub fn pse_main_output(
        &self,
        kind: PseKind,
        state: ResonanceState,
        input: Milliwatts,
    ) -> Milliwatts {
        input.attenuate(self.pse_main_loss(kind, state))
    }

    /// Crosstalk power leaked by a PSE traversal
    /// (Eqs. 1b, 1d, 1f, 1h).
    #[must_use]
    pub fn pse_leak_output(
        &self,
        kind: PseKind,
        state: ResonanceState,
        input: Milliwatts,
    ) -> Milliwatts {
        input * self.pse_leak_gain(kind, state)
    }

    /// Straight-through output power of a plain crossing (Eq. 1i).
    #[must_use]
    pub fn crossing_output(&self, input: Milliwatts) -> Milliwatts {
        input.attenuate(self.crossing_loss())
    }

    /// Power leaked into one perpendicular direction of a plain crossing
    /// (Eq. 1j).
    #[must_use]
    pub fn crossing_leak_output(&self, input: Milliwatts) -> Milliwatts {
        input * self.crossing_leak_gain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transfer_fixture() -> PhysicalParameters {
        PhysicalParameters::default()
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    fn lin(db: f64) -> f64 {
        10f64.powf(db / 10.0)
    }

    #[test]
    fn eq_1a_ppse_off_through() {
        let p = transfer_fixture();
        let t = ElementTransfer::new(&p);
        let out = t.pse_main_output(PseKind::Parallel, ResonanceState::Off, Milliwatts(1.0));
        assert!(close(out.0, lin(-0.005)));
    }

    #[test]
    fn eq_1b_ppse_off_leak() {
        let p = transfer_fixture();
        let t = ElementTransfer::new(&p);
        let out = t.pse_leak_output(PseKind::Parallel, ResonanceState::Off, Milliwatts(1.0));
        assert!(close(out.0, lin(-20.0)));
    }

    #[test]
    fn eq_1c_ppse_on_drop() {
        let p = transfer_fixture();
        let t = ElementTransfer::new(&p);
        let out = t.pse_main_output(PseKind::Parallel, ResonanceState::On, Milliwatts(1.0));
        assert!(close(out.0, lin(-0.5)));
    }

    #[test]
    fn eq_1d_ppse_on_leak() {
        let p = transfer_fixture();
        let t = ElementTransfer::new(&p);
        let out = t.pse_leak_output(PseKind::Parallel, ResonanceState::On, Milliwatts(1.0));
        assert!(close(out.0, lin(-25.0)));
    }

    #[test]
    fn eq_1e_cpse_off_through() {
        let p = transfer_fixture();
        let t = ElementTransfer::new(&p);
        let out = t.pse_main_output(PseKind::Crossing, ResonanceState::Off, Milliwatts(1.0));
        assert!(close(out.0, lin(-0.045)));
    }

    #[test]
    fn eq_1f_cpse_off_leak_is_linear_sum() {
        let p = transfer_fixture();
        let t = ElementTransfer::new(&p);
        let out = t.pse_leak_output(PseKind::Crossing, ResonanceState::Off, Milliwatts(1.0));
        assert!(close(out.0, lin(-20.0) + lin(-40.0)));
    }

    #[test]
    fn eq_1g_cpse_on_drop() {
        let p = transfer_fixture();
        let t = ElementTransfer::new(&p);
        let out = t.pse_main_output(PseKind::Crossing, ResonanceState::On, Milliwatts(1.0));
        assert!(close(out.0, lin(-0.5)));
    }

    #[test]
    fn eq_1h_cpse_on_leak() {
        let p = transfer_fixture();
        let t = ElementTransfer::new(&p);
        let out = t.pse_leak_output(PseKind::Crossing, ResonanceState::On, Milliwatts(1.0));
        assert!(close(out.0, lin(-25.0)));
    }

    #[test]
    fn eq_1i_crossing_through() {
        let p = transfer_fixture();
        let t = ElementTransfer::new(&p);
        let out = t.crossing_output(Milliwatts(2.0));
        assert!(close(out.0, 2.0 * lin(-0.04)));
    }

    #[test]
    fn eq_1j_crossing_leak() {
        let p = transfer_fixture();
        let t = ElementTransfer::new(&p);
        let out = t.crossing_leak_output(Milliwatts(2.0));
        assert!(close(out.0, 2.0 * lin(-40.0)));
    }

    #[test]
    fn propagation_loss_scales_with_length() {
        let p = transfer_fixture();
        let t = ElementTransfer::new(&p);
        assert!(close(t.propagation_loss(1.0).0, -0.274));
        assert!(close(t.propagation_loss(0.25).0, -0.0685));
        assert!(close(t.propagation_loss(0.0).0, 0.0));
    }

    #[test]
    fn leak_is_always_weaker_than_main_path() {
        let p = transfer_fixture();
        let t = ElementTransfer::new(&p);
        for kind in [PseKind::Parallel, PseKind::Crossing] {
            for state in [ResonanceState::On, ResonanceState::Off] {
                let main = t.pse_main_output(kind, state, Milliwatts(1.0)).0;
                let leak = t.pse_leak_output(kind, state, Milliwatts(1.0)).0;
                assert!(
                    leak < main,
                    "leak should be below main path for {kind} {state}"
                );
            }
        }
    }

    #[test]
    fn displays() {
        assert_eq!(PseKind::Parallel.to_string(), "PPSE");
        assert_eq!(PseKind::Crossing.to_string(), "CPSE");
        assert_eq!(ResonanceState::On.to_string(), "ON");
        assert_eq!(ResonanceState::Off.to_string(), "OFF");
    }
}
