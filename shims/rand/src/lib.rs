//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this workspace ships the small, deterministic subset of the `rand`
//! 0.8 API it actually uses: [`rngs::StdRng`] (an xoshiro256++ PRNG
//! seeded via SplitMix64), the [`Rng`]/[`RngCore`]/[`SeedableRng`]
//! traits, uniform range sampling and [`seq::SliceRandom`].
//!
//! Determinism is the only contract: the same seed always yields the
//! same stream on every platform. The stream is **not** bit-compatible
//! with the real `rand` crate, which is fine — nothing in the workspace
//! depends on specific draw values, only on seeded reproducibility.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps 64 random bits to a double in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits, as rand's Open01/Standard do.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform sampling from a range type.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (bias < 2^-64·span).
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let hi = ((u128::from(rng.next_u64()) * u128::from(span + 1)) >> 64) as u64;
                lo.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Built-in generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random element selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.gen_range(1..=128);
            assert!((1..=128).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements should move something");
    }

    #[test]
    fn unsized_rng_callers_compile() {
        fn takes_unsized<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = takes_unsized(&mut rng);
    }
}
