//! Worst-case-bound validation sweep (extension): Monte-Carlo activity
//! sampling across all benchmarks, reporting the bound, the worst
//! sampled configuration and the pessimism margin at each duty cycle.
//!
//! ```text
//! cargo run --release -p bench --bin activity_validation [--samples N] [--seed S]
//! ```

use bench::{arg_value, paper_problem, write_results_file, TABLE2_APPS};
use phonoc_core::montecarlo::activity_study;
use phonoc_core::{run_dse, DseConfig, Objective};
use phonoc_opt::Rpbla;
use phonoc_topo::TopologyKind;
use std::fmt::Write as _;

fn main() {
    let samples: usize = arg_value("--samples").unwrap_or(2_000);
    let seed: u64 = arg_value("--seed").unwrap_or(19);

    println!("Monte-Carlo validation: {samples} sampled activity patterns per cell\n");
    println!(
        "{:<15} {:>9} {:>12} {:>13} {:>14} {:>12}",
        "app", "activity", "bound (dB)", "min sampled", "mean sampled", "pessimism"
    );

    let mut csv =
        String::from("app,activity,bound_snr_db,min_sampled_db,mean_sampled_db,pessimism_db\n");
    let mut violations = 0usize;
    for app in TABLE2_APPS {
        let problem = paper_problem(app, TopologyKind::Mesh, Objective::MaximizeWorstCaseSnr);
        let mapping = run_dse(&problem, &Rpbla, &DseConfig::new(10_000, seed)).best_mapping;
        for activity in [0.25, 0.5, 1.0] {
            let s = activity_study(&problem, &mapping, activity, samples, seed);
            if s.min_sampled_snr < s.worst_case_snr {
                violations += 1;
            }
            println!(
                "{:<15} {:>8.0}% {:>12.2} {:>13.2} {:>14.2} {:>11.2}",
                app,
                activity * 100.0,
                s.worst_case_snr.0,
                s.min_sampled_snr.0,
                s.mean_sampled_snr.0,
                s.pessimism().0
            );
            let _ = writeln!(
                csv,
                "{app},{activity},{:.3},{:.3},{:.3},{:.3}",
                s.worst_case_snr.0,
                s.min_sampled_snr.0,
                s.mean_sampled_snr.0,
                s.pessimism().0
            );
        }
        println!();
    }
    println!("bound violations: {violations} (must be 0 — the worst case is a true bound)");
    write_results_file("activity_validation.csv", &csv);
    assert_eq!(violations, 0, "worst-case bound violated");
}
