//! Incremental problem mutation and context reuse: the warm-start
//! engine's correctness contract.
//!
//! * Mutating a live [`MappingProblem`] in place
//!   ([`MappingProblem::update_edge_bandwidths`] / `add_edge` /
//!   `remove_edge`) must be **bit-identical** to tearing the problem
//!   down and rebuilding it from the mutated CG — over random mutation
//!   batches, checked by evaluating random mappings against a
//!   fresh-built oracle.
//! * Reusing one [`OptContext`] across problems via
//!   [`OptContext::reset_for`] must be bit-identical to constructing a
//!   fresh context — the reused scratches and tables are a cost
//!   optimization, never a behavior change.
//! * A seed start planted with [`OptContext::set_seed_start`] but never
//!   consumed must be *detectable* ([`OptContext::seed_start_pending`])
//!   without being an error — start-free strategies legitimately
//!   ignore seeds.
//!
//! Same idiom as `delta_properties.rs`: seeded loops over randomized
//! cases with exact (bit-level) equality assertions, not approximate
//! comparisons.

use phonoc_apps::scenario::{ScenarioFamily, ScenarioSpec};
use phonoc_apps::{CommunicationGraph, TaskId};
use phonoc_core::{Mapping, MappingOptimizer, MappingProblem, Objective, OptContext};
use phonoc_phys::{Length, PhysicalParameters};
use phonoc_route::XyRouting;
use phonoc_router::crux::crux_router;
use phonoc_topo::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MESH: usize = 4;

fn problem_from(cg: CommunicationGraph) -> MappingProblem {
    MappingProblem::new(
        cg,
        Topology::mesh(MESH, MESH, Length::from_mm(2.5)),
        crux_router(),
        Box::new(XyRouting),
        PhysicalParameters::default(),
        Objective::MaximizeWorstCaseSnr,
    )
    .unwrap()
}

fn scenario_cg(seed: u64) -> CommunicationGraph {
    ScenarioSpec {
        family: ScenarioFamily::Random,
        mesh: MESH,
        density_pct: 100,
        seed,
    }
    .build()
}

/// A directed pair with no edge in either direction, or `None`.
fn free_pair(problem: &MappingProblem, rng: &mut StdRng) -> Option<(TaskId, TaskId)> {
    let n = problem.task_count();
    for _ in 0..64 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b
            && problem.cg().edge_index(TaskId(a), TaskId(b)).is_none()
            && problem.cg().edge_index(TaskId(b), TaskId(a)).is_none()
        {
            return Some((TaskId(a), TaskId(b)));
        }
    }
    None
}

/// Random mutation batches against a fresh-built oracle: after any mix
/// of weight updates, edge removals and edge additions, the mutated
/// problem must evaluate every mapping bit-identically to a problem
/// rebuilt from scratch on the mutated CG.
#[test]
fn mutated_problem_matches_fresh_build() {
    for case in 0..8 {
        let mut rng = StdRng::seed_from_u64(0xA11C_E000 + case);
        let mut problem = problem_from(scenario_cg(case + 1));
        for batch in 0..4 {
            // One batch: 1–4 random mutations of mixed kinds.
            for _ in 0..rng.gen_range(1..=4usize) {
                match rng.gen_range(0..3u32) {
                    0 => {
                        // Re-weight a random existing edge.
                        let e = &problem.cg().edges()[rng.gen_range(0..problem.cg().edge_count())];
                        let (s, d) = (e.src, e.dst);
                        let bw = e.bandwidth * rng.gen_range(0.5..=1.5);
                        problem.update_edge_bandwidths(&[(s, d, bw)]).unwrap();
                    }
                    1 if problem.cg().edge_count() > 4 => {
                        // Drop a random edge (keep a few so the CG
                        // stays interesting).
                        let e = &problem.cg().edges()[rng.gen_range(0..problem.cg().edge_count())];
                        let (s, d) = (e.src, e.dst);
                        problem.remove_edge(s, d).unwrap();
                    }
                    _ => {
                        if let Some((s, d)) = free_pair(&problem, &mut rng) {
                            problem.add_edge(s, d, rng.gen_range(10.0..200.0)).unwrap();
                        }
                    }
                }
            }
            // Oracle: the same CG, built from scratch.
            let fresh = problem_from(problem.cg().clone());
            assert_eq!(
                problem.evaluator().edge_count(),
                fresh.evaluator().edge_count(),
                "case {case} batch {batch}: edge caches out of lock-step"
            );
            let mut map_rng = StdRng::seed_from_u64(0xBEEF + case * 31 + batch);
            for _ in 0..5 {
                let m = Mapping::random(problem.task_count(), problem.tile_count(), &mut map_rng);
                let (mm, ms) = problem.evaluate(&m);
                let (fm, fs) = fresh.evaluate(&m);
                assert_eq!(
                    ms.to_bits(),
                    fs.to_bits(),
                    "case {case} batch {batch}: scores diverge ({ms} vs {fs})"
                );
                assert_eq!(
                    mm.worst_case_snr.0.to_bits(),
                    fm.worst_case_snr.0.to_bits(),
                    "case {case} batch {batch}: metrics diverge"
                );
            }
        }
    }
}

/// Mutation validation: bad updates are rejected with the problem left
/// untouched (all-or-nothing), on both the evaluator and CG layers.
#[test]
fn invalid_mutations_are_rejected_atomically() {
    let mut problem = problem_from(scenario_cg(7));
    let edges_before: Vec<_> = problem.cg().edges().to_vec();
    let e0 = (edges_before[0].src, edges_before[0].dst);
    let missing = {
        let mut rng = StdRng::seed_from_u64(5);
        free_pair(&problem, &mut rng).expect("d100 random CGs are not complete")
    };

    // Nonexistent edge in a batch → whole batch rejected.
    assert!(problem
        .update_edge_bandwidths(&[(e0.0, e0.1, 50.0), (missing.0, missing.1, 50.0)])
        .is_err());
    // Nonpositive / non-finite weights → rejected.
    assert!(problem
        .update_edge_bandwidths(&[(e0.0, e0.1, 0.0)])
        .is_err());
    assert!(problem
        .update_edge_bandwidths(&[(e0.0, e0.1, f64::NAN)])
        .is_err());
    // Duplicate add, self-loop add, missing remove → rejected.
    assert!(problem.add_edge(e0.0, e0.1, 10.0).is_err());
    assert!(problem.add_edge(e0.0, e0.0, 10.0).is_err());
    assert!(problem.remove_edge(missing.0, missing.1).is_err());

    assert_eq!(
        problem.cg().edges(),
        edges_before.as_slice(),
        "rejected mutations must leave the CG untouched"
    );
    assert_eq!(problem.evaluator().edge_count(), edges_before.len());
}

/// A deliberately simple strategy that *does* consume seed starts: a
/// greedy walk restarting from `initial_mapping`.
#[derive(Debug)]
struct SeededWalk;

impl MappingOptimizer for SeededWalk {
    fn name(&self) -> &'static str {
        "seeded-walk"
    }
    fn optimize(&self, ctx: &mut OptContext<'_>) {
        let start = ctx.initial_mapping();
        if ctx.evaluate(&start).is_none() {
            return;
        }
        while !ctx.exhausted() {
            let m = ctx.random_mapping();
            if ctx.evaluate(&m).is_none() {
                break;
            }
        }
    }
}

/// A start-free strategy (like random search): never calls
/// `initial_mapping`, so a planted seed goes unconsumed.
#[derive(Debug)]
struct StartFree;

impl MappingOptimizer for StartFree {
    fn name(&self) -> &'static str {
        "start-free"
    }
    fn optimize(&self, ctx: &mut OptContext<'_>) {
        while !ctx.exhausted() {
            let m = ctx.random_mapping();
            if ctx.evaluate(&m).is_none() {
                break;
            }
        }
    }
}

fn result_fingerprint(r: &phonoc_core::DseResult) -> (u64, Mapping, usize, usize, usize) {
    (
        r.best_score.to_bits(),
        r.best_mapping.clone(),
        r.evaluations,
        r.full_evaluations,
        r.delta_evaluations,
    )
}

/// A context reused across problems via `reset_for` must reproduce a
/// fresh context bit-for-bit: same best, same budget accounting, same
/// history.
#[test]
fn reset_for_is_bit_identical_to_a_fresh_context() {
    let first = problem_from(scenario_cg(11));
    let second = problem_from(scenario_cg(12));
    let opt = SeededWalk;

    for seed in [3u64, 17, 99] {
        let fresh = {
            let mut ctx = OptContext::new(&second, 40, seed);
            opt.optimize(&mut ctx);
            ctx.finish(opt.name())
        };
        let reused = {
            // Warm the context up on a *different* problem first, so
            // reused scratches and RNG state would show up as a diff.
            let mut ctx = OptContext::new(&first, 40, seed ^ 0xDEAD);
            opt.optimize(&mut ctx);
            let _ = ctx.finish(opt.name());
            ctx.reset_for(&second, 40, seed);
            opt.optimize(&mut ctx);
            ctx.finish(opt.name())
        };
        assert_eq!(
            result_fingerprint(&fresh),
            result_fingerprint(&reused),
            "seed {seed}: reset_for diverged from a fresh context"
        );
        assert_eq!(fresh.history, reused.history, "seed {seed}");
    }
}

/// `reset_for` must also serve *the same problem* again (the replay
/// harness's repeat-request path) with fresh-run results.
#[test]
fn reset_for_same_problem_repeats_the_run() {
    let problem = problem_from(scenario_cg(21));
    let opt = SeededWalk;
    let mut ctx = OptContext::new(&problem, 30, 5);
    opt.optimize(&mut ctx);
    let first = ctx.finish(opt.name());
    ctx.reset_for(&problem, 30, 5);
    opt.optimize(&mut ctx);
    let again = ctx.finish(opt.name());
    assert_eq!(result_fingerprint(&first), result_fingerprint(&again));
}

/// Seed-start misuse detection: a planted seed a start-free strategy
/// never consumes stays queryable (and is logged once, not asserted
/// on); consuming strategies take exactly the planted mapping.
#[test]
fn unconsumed_seed_starts_are_detectable_not_fatal() {
    let problem = problem_from(scenario_cg(31));
    let planted = Mapping::identity(problem.task_count(), problem.tile_count());

    // Start-free strategy: the seed survives the whole session.
    let mut ctx = OptContext::new(&problem, 10, 1);
    assert!(!ctx.seed_start_pending());
    ctx.set_seed_start(planted.clone());
    assert!(ctx.seed_start_pending());
    StartFree.optimize(&mut ctx);
    assert!(
        ctx.seed_start_pending(),
        "a start-free run must leave the seed unconsumed (and detectable)"
    );
    let result = ctx.finish("start-free"); // logs the rate-limited warning
    assert!(result.best_score.is_finite());

    // Consuming strategy: the seed is handed out exactly once.
    let mut ctx = OptContext::new(&problem, 10, 1);
    ctx.set_seed_start(planted.clone());
    let start = ctx.initial_mapping();
    assert_eq!(
        start, planted,
        "initial_mapping must return the planted seed"
    );
    assert!(!ctx.seed_start_pending(), "the seed is one-shot");
    // Later draws fall back to random (no stale seed replay).
    let next = ctx.initial_mapping();
    assert_ne!(next, planted, "consumed seeds must not be handed out twice");

    // reset_for clears a pending seed: a stale elite from a previous
    // request must never leak into the next one.
    let mut ctx = OptContext::new(&problem, 10, 1);
    ctx.set_seed_start(planted);
    ctx.reset_for(&problem, 10, 2);
    assert!(!ctx.seed_start_pending(), "reset_for must drop stale seeds");
}
