//! Scenario generation for design-space sweeps: seeded workload
//! families and the [`ScenarioMatrix`] that enumerates them over
//! mesh sizes, edge densities and seeds.
//!
//! The paper evaluates eight fixed multimedia benchmarks; the sweep
//! subsystem instead treats workloads as a **parameterized space** (the
//! MorphoNoC approach): every scenario is a [`ScenarioSpec`] — a
//! generator *family*, an `n×n` mesh it fully occupies, an edge-density
//! knob and an RNG seed — and [`ScenarioSpec::build`] materializes the
//! communication graph deterministically. Anything measured against a
//! spec (peek-strategy medians, optimizer scores) is reproducible from
//! its [`ScenarioSpec::id`] alone.
//!
//! # Families
//!
//! * [`ScenarioFamily::Pipeline`] — a linear chain
//!   ([`crate::synthetic::pipeline`]): the sparsest connected workload,
//!   every task degree ≤ 2. The incremental delta's best case.
//! * [`ScenarioFamily::Star`] — one shared hub
//!   ([`crate::synthetic::star`]): a single maximum-degree task.
//! * [`ScenarioFamily::Random`] — random weakly-connected graph
//!   ([`crate::synthetic::random`]), density-swept extra edges. The
//!   dense worst case the PR 2 benches measured.
//! * [`ScenarioFamily::Hotspot`] — [`hotspot`]: a few hot tasks (memory
//!   controllers) collect traffic from everyone else; degree is heavily
//!   skewed but most tasks stay degree-1.
//! * [`ScenarioFamily::Tree`] — [`tree`]: a binary reduction/broadcast
//!   tree; logarithmic diameter, bounded degree.
//! * [`ScenarioFamily::Clustered`] — [`clustered`]: dense blocks of
//!   tightly-coupled tasks, sparsely chained — the "accelerator
//!   islands" shape; density sweeps the intra-cluster traffic.
//! * [`ScenarioFamily::MpegLike`] — [`mpeg_like`]: an MPEG-4-style
//!   SDRAM hub with heavy-tailed bandwidths plus density-swept
//!   peer-to-peer edges, interpolating between Star and Random.
//!
//! All generators produce weakly connected graphs (the evaluator's
//! worst cases are meaningful) and are pure functions of their
//! arguments and RNG state; [`ScenarioSpec::build`] derives the RNG
//! from the spec, so equal specs always build equal graphs
//! (unit-tested below).

use crate::cg::{CgBuilder, CommunicationGraph};
use crate::synthetic;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A workload generator family (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioFamily {
    /// Linear chain ([`crate::synthetic::pipeline`]).
    Pipeline,
    /// Single shared hub ([`crate::synthetic::star`]).
    Star,
    /// Random weakly-connected graph ([`crate::synthetic::random`]).
    Random,
    /// Few hot sinks, many degree-1 sources ([`hotspot`]).
    Hotspot,
    /// Binary reduction/broadcast tree ([`tree`]).
    Tree,
    /// Dense clusters, sparse interconnect ([`clustered`]).
    Clustered,
    /// MPEG-4-style hub plus density-swept peer traffic ([`mpeg_like`]).
    MpegLike,
}

impl ScenarioFamily {
    /// Every family, in the canonical sweep order.
    pub const ALL: [ScenarioFamily; 7] = [
        ScenarioFamily::Pipeline,
        ScenarioFamily::Star,
        ScenarioFamily::Random,
        ScenarioFamily::Hotspot,
        ScenarioFamily::Tree,
        ScenarioFamily::Clustered,
        ScenarioFamily::MpegLike,
    ];

    /// Stable lowercase identifier (used in scenario ids and JSON).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioFamily::Pipeline => "pipeline",
            ScenarioFamily::Star => "star",
            ScenarioFamily::Random => "random",
            ScenarioFamily::Hotspot => "hotspot",
            ScenarioFamily::Tree => "tree",
            ScenarioFamily::Clustered => "clustered",
            ScenarioFamily::MpegLike => "mpeg-like",
        }
    }

    /// Looks a family up by its [`ScenarioFamily::name`].
    #[must_use]
    pub fn by_name(name: &str) -> Option<ScenarioFamily> {
        ScenarioFamily::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Whether the edge-density knob changes this family's graphs
    /// (structural families like pipelines and trees have one canonical
    /// shape per size).
    #[must_use]
    pub fn density_swept(&self) -> bool {
        matches!(
            self,
            ScenarioFamily::Random | ScenarioFamily::Clustered | ScenarioFamily::MpegLike
        )
    }

    /// Stable per-family salt mixed into the generator seed, so the
    /// same `(mesh, density, seed)` cell draws independent streams in
    /// different families.
    fn salt(&self) -> u64 {
        match self {
            ScenarioFamily::Pipeline => 1,
            ScenarioFamily::Star => 2,
            ScenarioFamily::Random => 3,
            ScenarioFamily::Hotspot => 4,
            ScenarioFamily::Tree => 5,
            ScenarioFamily::Clustered => 6,
            ScenarioFamily::MpegLike => 7,
        }
    }
}

/// One point of the scenario space: a family instantiated on a fully
/// occupied `mesh × mesh` grid at an edge density, from a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioSpec {
    /// The generator family.
    pub family: ScenarioFamily,
    /// Mesh side: the scenario targets an `mesh × mesh` grid and
    /// generates `mesh²` tasks (full occupancy).
    pub mesh: usize,
    /// Edge-density knob in percent of the task count: density-swept
    /// families add `⌊tasks · density_pct / 100⌋` extra edges on top of
    /// their structural skeleton; other families ignore it (and the
    /// matrix emits them at 100 only).
    pub density_pct: u32,
    /// Scenario seed; graphs are pure functions of the full spec.
    pub seed: u64,
}

impl ScenarioSpec {
    /// Number of tasks the scenario generates (= tiles of its mesh).
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.mesh * self.mesh
    }

    /// Stable identifier, e.g. `hotspot-12x12-d100-s1` — enough to
    /// rebuild the exact graph.
    #[must_use]
    pub fn id(&self) -> String {
        format!(
            "{}-{m}x{m}-d{}-s{}",
            self.family.name(),
            self.density_pct,
            self.seed,
            m = self.mesh
        )
    }

    /// The density that actually reaches the generator: families whose
    /// shape ignores the knob are pinned to 100, so their graphs (and
    /// RNG streams) are identical across the density axis.
    fn effective_density(&self) -> u32 {
        if self.family.density_swept() {
            self.density_pct
        } else {
            100
        }
    }

    /// Extra-edge budget the density knob buys this spec.
    fn extra_edges(&self) -> usize {
        self.task_count() * self.effective_density() as usize / 100
    }

    /// The spec's private RNG: a SplitMix64-style mix of every field,
    /// so neighbouring cells of the matrix draw unrelated streams.
    fn rng(&self) -> StdRng {
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.family.salt())
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(self.mesh as u64)
            .wrapping_mul(0x94D0_49BB_1331_11EB)
            .wrapping_add(u64::from(self.effective_density()));
        x ^= x >> 31;
        StdRng::seed_from_u64(x)
    }

    /// Materializes the communication graph. Deterministic: equal specs
    /// build equal graphs.
    ///
    /// # Panics
    ///
    /// Panics if `mesh < 2` (a 1×1 grid cannot host a connected CG).
    #[must_use]
    pub fn build(&self) -> CommunicationGraph {
        assert!(self.mesh >= 2, "scenario meshes start at 2x2");
        let n = self.task_count();
        let mut rng = self.rng();
        match self.family {
            ScenarioFamily::Pipeline => synthetic::pipeline(n),
            ScenarioFamily::Star => synthetic::star(n),
            ScenarioFamily::Random => synthetic::random(n, self.extra_edges(), &mut rng),
            ScenarioFamily::Hotspot => hotspot(n, (n / 16).max(1), &mut rng),
            ScenarioFamily::Tree => tree(n),
            ScenarioFamily::Clustered => {
                clustered(n, 8, self.extra_edges().div_ceil(n.div_ceil(8)), &mut rng)
            }
            ScenarioFamily::MpegLike => mpeg_like(n, self.extra_edges(), &mut rng),
        }
    }
}

/// A hotspot workload: `hotspots` hot tasks (chained for connectivity)
/// each collect traffic from an even share of the remaining tasks —
/// the memory-controller / shared-cache shape. Every non-hot task has
/// degree 1; the hot tasks concentrate the degree.
///
/// # Panics
///
/// Panics if `n < 2` or `hotspots` is 0 or ≥ `n`.
#[must_use]
pub fn hotspot<R: Rng>(n: usize, hotspots: usize, rng: &mut R) -> CommunicationGraph {
    assert!(n >= 2, "a hotspot workload needs at least 2 tasks");
    assert!(
        hotspots >= 1 && hotspots < n,
        "need between 1 and n-1 hotspots"
    );
    let mut b = CgBuilder::new(format!("hotspot-{n}"));
    for i in 0..hotspots {
        b = b.task(format!("h{i}"));
    }
    for i in hotspots..n {
        b = b.task(format!("t{i}"));
    }
    // Chain the hotspots so the hot set is itself connected.
    for i in 0..hotspots.saturating_sub(1) {
        b = b.edge(format!("h{i}"), format!("h{}", i + 1), 128.0);
    }
    // Every client task reports to a uniformly drawn hotspot.
    for i in hotspots..n {
        let h = rng.gen_range(0..hotspots);
        let bw = f64::from(rng.gen_range(8..=128));
        b = b.edge(format!("t{i}"), format!("h{h}"), bw);
    }
    b.build().expect("hotspot generator produces valid graphs")
}

/// A binary reduction/broadcast tree: task `i` exchanges with its
/// parent `(i−1)/2`, direction alternating by level so both reduction
/// and distribution flows appear. Bandwidth halves with depth (roots
/// aggregate more traffic). Deterministic — trees have one canonical
/// shape per size.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn tree(n: usize) -> CommunicationGraph {
    assert!(n >= 2, "a tree needs at least 2 tasks");
    let mut b = CgBuilder::new(format!("tree-{n}"));
    for i in 0..n {
        b = b.task(format!("t{i}"));
    }
    for i in 1..n {
        let parent = (i - 1) / 2;
        // Level of node i in the implicit binary heap: root = 0, its
        // children = 1, …
        let level = usize::BITS - 1 - (i + 1).leading_zeros();
        let bw = f64::from(256u32 >> level.min(5));
        if level % 2 == 0 {
            b = b.edge(format!("t{parent}"), format!("t{i}"), bw);
        } else {
            b = b.edge(format!("t{i}"), format!("t{parent}"), bw);
        }
    }
    b.build().expect("tree generator produces valid graphs")
}

/// A clustered workload: blocks of `cluster` tasks, each internally
/// ring-connected plus `extra_per_cluster` random intra-cluster edges,
/// with consecutive clusters chained by one link — the "accelerator
/// islands" shape. Density sweeps the intra-cluster traffic without
/// touching the sparse interconnect.
///
/// # Panics
///
/// Panics if `n < 2` or `cluster < 2`.
#[must_use]
pub fn clustered<R: Rng>(
    n: usize,
    cluster: usize,
    extra_per_cluster: usize,
    rng: &mut R,
) -> CommunicationGraph {
    assert!(n >= 2, "a clustered workload needs at least 2 tasks");
    assert!(cluster >= 2, "clusters need at least 2 tasks");
    let mut b = CgBuilder::new(format!("clustered-{n}"));
    for i in 0..n {
        b = b.task(format!("t{i}"));
    }
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let clusters = n.div_ceil(cluster);
    for c in 0..clusters {
        let lo = c * cluster;
        let hi = ((c + 1) * cluster).min(n);
        let size = hi - lo;
        // Intra-cluster ring (a 2-task cluster gets the single link —
        // the reverse direction of a 2-ring would double it up).
        for j in lo..hi {
            let next = lo + (j - lo + 1) % size;
            if size == 2 && j > lo {
                break;
            }
            if j != next && !edges.contains(&(j, next)) {
                edges.push((j, next));
            }
        }
        // Density-swept random intra-cluster edges.
        let mut added = 0;
        let mut attempts = 0;
        while size > 2 && added < extra_per_cluster && attempts < extra_per_cluster * 20 {
            attempts += 1;
            let s = lo + rng.gen_range(0..size);
            let d = lo + rng.gen_range(0..size);
            if s == d || edges.contains(&(s, d)) {
                continue;
            }
            edges.push((s, d));
            added += 1;
        }
        // One link onward to the next cluster.
        if hi < n {
            edges.push((lo, hi));
        }
    }
    for (s, d) in edges {
        let bw = f64::from(rng.gen_range(16..=256));
        b = b.edge(format!("t{s}"), format!("t{d}"), bw);
    }
    b.build()
        .expect("clustered generator produces valid graphs")
}

/// An MPEG-4-style workload: one SDRAM-like hub every task exchanges
/// with (heavy-tailed bandwidths, direction alternating), plus
/// `extra_edges` random peer-to-peer edges — sweeping density
/// interpolates from a pure star towards a dense random graph, which is
/// exactly the axis the hybrid peek's cost model has to track.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn mpeg_like<R: Rng>(n: usize, extra_edges: usize, rng: &mut R) -> CommunicationGraph {
    assert!(n >= 2, "an mpeg-like workload needs at least 2 tasks");
    let mut b = CgBuilder::new(format!("mpeg-like-{n}"));
    b = b.task("sdram");
    for i in 1..n {
        b = b.task(format!("t{i}"));
    }
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for i in 1..n {
        if i % 2 == 0 {
            edges.push((0, i));
        } else {
            edges.push((i, 0));
        }
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_edges && attempts < extra_edges * 20 {
        attempts += 1;
        let s = rng.gen_range(1..n);
        let d = rng.gen_range(1..n);
        if s == d || edges.contains(&(s, d)) {
            continue;
        }
        edges.push((s, d));
        added += 1;
    }
    let name = |t: usize| {
        if t == 0 {
            "sdram".to_owned()
        } else {
            format!("t{t}")
        }
    };
    for (s, d) in edges {
        // Heavy-tailed bandwidths: hub flows dwarf peer chatter, like
        // the real MPEG-4 SDRAM edges dwarf the rest of its CG.
        let bw = if s == 0 || d == 0 {
            f64::from(rng.gen_range(64..=640))
        } else {
            f64::from(rng.gen_range(1..=64))
        };
        b = b.edge(name(s), name(d), bw);
    }
    b.build()
        .expect("mpeg-like generator produces valid graphs")
}

/// The sweep's scenario space: the cross product family × mesh ×
/// density × seed, enumerated in a fixed, documented order
/// (family-major, then mesh, density, seed). Families that ignore the
/// density knob are emitted once per (mesh, seed) at density 100, so
/// the matrix never contains two specs that would build identical
/// graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioMatrix {
    families: Vec<ScenarioFamily>,
    meshes: Vec<usize>,
    densities: Vec<u32>,
    seeds: Vec<u64>,
}

impl ScenarioMatrix {
    /// A matrix over explicit axes.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty or a mesh is < 2.
    #[must_use]
    pub fn new(
        families: Vec<ScenarioFamily>,
        meshes: Vec<usize>,
        densities: Vec<u32>,
        seeds: Vec<u64>,
    ) -> ScenarioMatrix {
        assert!(
            !families.is_empty()
                && !meshes.is_empty()
                && !densities.is_empty()
                && !seeds.is_empty(),
            "every matrix axis needs at least one value"
        );
        assert!(meshes.iter().all(|&m| m >= 2), "meshes start at 2x2");
        ScenarioMatrix {
            families,
            meshes,
            densities,
            seeds,
        }
    }

    /// The full sweep: every family on 4×4 through 16×16 meshes,
    /// densities 50/100/200 % for the density-swept families, two seeds.
    #[must_use]
    pub fn full() -> ScenarioMatrix {
        ScenarioMatrix::new(
            ScenarioFamily::ALL.to_vec(),
            vec![4, 6, 8, 12, 16],
            vec![50, 100, 200],
            vec![1, 2],
        )
    }

    /// The CI smoke matrix: every family at the two smallest sizes, one
    /// density, one seed — seconds, not minutes.
    #[must_use]
    pub fn smoke() -> ScenarioMatrix {
        ScenarioMatrix::new(ScenarioFamily::ALL.to_vec(), vec![4, 6], vec![100], vec![1])
    }

    /// Enumerates the matrix in its canonical order.
    #[must_use]
    pub fn specs(&self) -> Vec<ScenarioSpec> {
        let mut out = Vec::new();
        for &family in &self.families {
            for &mesh in &self.meshes {
                let densities: &[u32] = if family.density_swept() {
                    &self.densities
                } else {
                    &[100]
                };
                for &density_pct in densities {
                    for &seed in &self.seeds {
                        out.push(ScenarioSpec {
                            family,
                            mesh,
                            density_pct,
                            seed,
                        });
                    }
                }
            }
        }
        out
    }

    /// Number of specs the matrix enumerates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs().len()
    }

    /// Whether the matrix is empty (it never is — every axis is
    /// validated non-empty — but clippy insists `len` has a companion).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_connected_graphs_of_the_right_size() {
        let mut rng = StdRng::seed_from_u64(9);
        for n in [4, 16, 36, 144] {
            let h = hotspot(n, (n / 16).max(1), &mut rng);
            assert_eq!(h.task_count(), n);
            assert!(h.is_weakly_connected(), "hotspot-{n}");
            let t = tree(n);
            assert_eq!(t.task_count(), n);
            assert_eq!(t.edge_count(), n - 1);
            assert!(t.is_weakly_connected(), "tree-{n}");
            let c = clustered(n, 8, 4, &mut rng);
            assert_eq!(c.task_count(), n);
            assert!(c.is_weakly_connected(), "clustered-{n}");
            let m = mpeg_like(n, n, &mut rng);
            assert_eq!(m.task_count(), n);
            assert!(m.is_weakly_connected(), "mpeg-like-{n}");
            assert!(m.edge_count() >= n - 1);
        }
    }

    #[test]
    fn every_family_builds_at_every_full_matrix_cell() {
        for spec in ScenarioMatrix::full().specs() {
            let cg = spec.build();
            assert_eq!(cg.task_count(), spec.task_count(), "{}", spec.id());
            assert!(cg.is_weakly_connected(), "{}", spec.id());
            assert!(
                cg.task_count() <= spec.mesh * spec.mesh,
                "{} must fit its mesh",
                spec.id()
            );
        }
    }

    #[test]
    fn specs_are_deterministic_per_seed() {
        for spec in ScenarioMatrix::smoke().specs() {
            assert_eq!(spec.build(), spec.build(), "{}", spec.id());
        }
        // A 12×12 cell, twice, through two separately constructed specs.
        let spec = |seed| ScenarioSpec {
            family: ScenarioFamily::Hotspot,
            mesh: 12,
            density_pct: 100,
            seed,
        };
        assert_eq!(spec(7).build(), spec(7).build());
        assert_ne!(
            spec(7).build(),
            spec(8).build(),
            "different seeds must differ"
        );
    }

    #[test]
    fn density_changes_swept_families_only() {
        let at = |family, density_pct| {
            ScenarioSpec {
                family,
                mesh: 6,
                density_pct,
                seed: 1,
            }
            .build()
        };
        for family in ScenarioFamily::ALL {
            let lo = at(family, 50);
            let hi = at(family, 200);
            if family.density_swept() {
                assert!(
                    hi.edge_count() > lo.edge_count(),
                    "{}: density must add edges",
                    family.name()
                );
            } else {
                assert_eq!(lo, hi, "{}: density must be inert", family.name());
            }
        }
    }

    #[test]
    fn matrix_enumeration_is_stable_and_deduplicated() {
        let m = ScenarioMatrix::smoke();
        let specs = m.specs();
        assert_eq!(specs.len(), m.len());
        assert_eq!(specs, m.specs(), "enumeration order must be stable");
        // No two specs build the same graph shape: ids are unique.
        let mut ids: Vec<String> = specs.iter().map(ScenarioSpec::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), specs.len());
        // Structural families appear once per (mesh, seed) even though
        // the full matrix sweeps three densities.
        let full = ScenarioMatrix::full();
        let pipelines = full
            .specs()
            .iter()
            .filter(|s| s.family == ScenarioFamily::Pipeline)
            .count();
        assert_eq!(pipelines, 5 * 2, "5 meshes x 2 seeds, density collapsed");
    }

    #[test]
    fn family_names_round_trip() {
        for f in ScenarioFamily::ALL {
            assert_eq!(ScenarioFamily::by_name(f.name()), Some(f));
        }
        assert_eq!(ScenarioFamily::by_name("nonsense"), None);
    }
}
