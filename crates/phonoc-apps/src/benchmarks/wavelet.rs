//! Wavelet — two-level 2D discrete wavelet transform, 22 tasks.
//!
//! The paper lists "Wavelet, a wavelet transform application (22 tasks)"
//! without a public edge list, so this is a documented reconstruction
//! (DESIGN.md §5): a standard two-level separable 2D DWT filter bank —
//! row low/high-pass filtering, column filtering into the LL/LH/HL/HH
//! subbands, recursion on LL, per-subband quantizers and an output
//! collector.

use crate::cg::{CgBuilder, CommunicationGraph};

/// Builds the 22-task wavelet-transform communication graph.
///
/// # Examples
///
/// ```
/// let cg = phonoc_apps::benchmarks::wavelet();
/// assert_eq!(cg.task_count(), 22);
/// ```
#[must_use]
pub fn wavelet() -> CommunicationGraph {
    CgBuilder::new("Wavelet")
        .tasks([
            "src", "split", // front-end
            "row_lp1", "row_hp1", // level-1 row filters
            "col_ll1", "col_lh1", "col_hl1", "col_hh1", // level-1 column filters
            "row_lp2", "row_hp2", // level-2 row filters
            "col_ll2", "col_lh2", "col_hl2", "col_hh2", // level-2 column filters
            "q_lh1", "q_hl1", "q_hh1", // level-1 quantizers
            "q_ll2", "q_lh2", "q_hl2", "q_hh2", // level-2 quantizers
            "out",   // collector
        ])
        .edge("src", "split", 128.0)
        .edge("split", "row_lp1", 64.0)
        .edge("split", "row_hp1", 64.0)
        .edge("row_lp1", "col_ll1", 32.0)
        .edge("row_lp1", "col_lh1", 32.0)
        .edge("row_hp1", "col_hl1", 32.0)
        .edge("row_hp1", "col_hh1", 32.0)
        .edge("col_ll1", "row_lp2", 16.0)
        .edge("col_ll1", "row_hp2", 16.0)
        .edge("col_lh1", "q_lh1", 16.0)
        .edge("col_hl1", "q_hl1", 16.0)
        .edge("col_hh1", "q_hh1", 16.0)
        .edge("row_lp2", "col_ll2", 8.0)
        .edge("row_lp2", "col_lh2", 8.0)
        .edge("row_hp2", "col_hl2", 8.0)
        .edge("row_hp2", "col_hh2", 8.0)
        .edge("col_ll2", "q_ll2", 4.0)
        .edge("col_lh2", "q_lh2", 4.0)
        .edge("col_hl2", "q_hl2", 4.0)
        .edge("col_hh2", "q_hh2", 4.0)
        .edge("q_lh1", "out", 8.0)
        .edge("q_hl1", "out", 8.0)
        .edge("q_hh1", "out", 8.0)
        .edge("q_ll2", "out", 2.0)
        .edge("q_lh2", "out", 2.0)
        .edge("q_hl2", "out", 2.0)
        .edge("q_hh2", "out", 2.0)
        .build()
        .expect("the Wavelet benchmark graph must validate")
}

#[cfg(test)]
mod tests {
    #[test]
    fn wavelet_shape() {
        let cg = super::wavelet();
        assert_eq!(cg.task_count(), 22, "paper: Wavelet has 22 tasks");
        assert_eq!(cg.edge_count(), 27);
        assert!(cg.is_weakly_connected());
    }

    #[test]
    fn out_collects_all_subbands() {
        let cg = super::wavelet();
        let out = cg.task_id("out").unwrap();
        assert_eq!(cg.in_degree(out), 7);
        assert_eq!(cg.out_degree(out), 0);
    }
}
