//! Criterion micro-benchmarks for the mapping evaluator: the operation
//! every search algorithm pays per candidate, so its throughput bounds
//! the whole design-space exploration (paper Table II ran 100 000+
//! evaluations per cell).

use bench::{paper_problem, TABLE2_APPS};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use phonoc_core::{Mapping, Objective};
use phonoc_topo::TopologyKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn evaluator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate_mapping");
    for app in TABLE2_APPS {
        let problem = paper_problem(app, TopologyKind::Mesh, Objective::MaximizeWorstCaseSnr);
        let tasks = problem.task_count();
        let tiles = problem.tile_count();
        group.bench_function(app, |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter_batched(
                || Mapping::random(tasks, tiles, &mut rng),
                |m| problem.evaluate(&m),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn evaluator_construction(c: &mut Criterion) {
    // Problem assembly precomputes every tile-pair path and the router
    // interaction matrix; it is paid once per experiment cell.
    c.bench_function("evaluator_precompute_dvopd_6x6", |b| {
        b.iter(|| {
            paper_problem(
                "DVOPD",
                TopologyKind::Mesh,
                Objective::MaximizeWorstCaseSnr,
            )
        });
    });
}

criterion_group!(benches, evaluator_throughput, evaluator_construction);
criterion_main!(benches);
